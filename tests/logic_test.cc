#include <gtest/gtest.h>

#include "logic/cnf.h"
#include "logic/dnf.h"
#include "logic/prop_formula.h"
#include "logic/qbf.h"
#include "logic/sat_solver.h"
#include "util/random.h"

namespace iodb {
namespace {

// Exhaustive satisfiability check for small formulas.
bool BruteForceSat(const CnfFormula& f) {
  std::vector<bool> assignment(f.num_vars, false);
  for (uint64_t bits = 0; bits < (uint64_t{1} << f.num_vars); ++bits) {
    for (int v = 0; v < f.num_vars; ++v) assignment[v] = (bits >> v) & 1;
    if (f.Evaluate(assignment)) return true;
  }
  return f.clauses.empty();
}

TEST(CnfTest, EvaluateAndMonotone) {
  CnfFormula f;
  f.num_vars = 2;
  f.clauses = {{{0, true}, {1, true}}, {{0, false}}};
  EXPECT_TRUE(f.Evaluate({false, true}));
  EXPECT_FALSE(f.Evaluate({true, true}));
  // {x0 | x1} is all-positive and {~x0} is all-negative: monotone.
  EXPECT_TRUE(f.IsMonotone());
}

TEST(CnfTest, MixedClauseNotMonotone) {
  CnfFormula f{2, {{{0, true}, {1, false}}}};
  EXPECT_FALSE(f.IsMonotone());
}

TEST(CnfTest, RandomGeneratorsShape) {
  Rng rng(1);
  CnfFormula f = RandomKSat(5, 10, 3, rng);
  EXPECT_EQ(f.num_vars, 5);
  EXPECT_EQ(f.clauses.size(), 10u);
  for (const Clause& c : f.clauses) EXPECT_EQ(c.size(), 3u);
  CnfFormula m = RandomMonotone3Sat(5, 10, rng);
  EXPECT_TRUE(m.IsMonotone());
}

TEST(SatSolverTest, SimpleSat) {
  CnfFormula f{2, {{{0, true}, {1, true}}, {{0, false}, {1, true}}}};
  SatSolver solver;
  auto model = solver.Solve(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(f.Evaluate(*model));
}

TEST(SatSolverTest, SimpleUnsat) {
  CnfFormula f{1, {{{0, true}}, {{0, false}}}};
  SatSolver solver;
  EXPECT_FALSE(solver.Solve(f).has_value());
}

TEST(SatSolverTest, EmptyClauseUnsat) {
  CnfFormula f{1, {{}}};
  SatSolver solver;
  EXPECT_FALSE(solver.Solve(f).has_value());
}

TEST(SatSolverTest, EmptyFormulaSat) {
  CnfFormula f{0, {}};
  SatSolver solver;
  EXPECT_TRUE(solver.Solve(f).has_value());
}

class SatSolverRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatSolverRandomTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  int num_vars = rng.UniformInt(2, 8);
  int num_clauses = rng.UniformInt(1, 20);
  CnfFormula f = RandomKSat(num_vars, num_clauses,
                            std::min(3, num_vars), rng);
  SatSolver solver;
  auto model = solver.Solve(f);
  EXPECT_EQ(model.has_value(), BruteForceSat(f));
  if (model.has_value()) {
    EXPECT_TRUE(f.Evaluate(*model));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatSolverRandomTest,
                         ::testing::Range(0, 40));

TEST(PropFormulaTest, EvaluateAndSize) {
  auto f = PropFormula::Or(PropFormula::And(PropFormula::Var(0),
                                            PropFormula::Var(1)),
                           PropFormula::Not(PropFormula::Var(2)));
  EXPECT_TRUE(f->Evaluate({true, true, true}));
  EXPECT_TRUE(f->Evaluate({false, false, false}));
  EXPECT_FALSE(f->Evaluate({true, false, true}));
  EXPECT_EQ(f->Size(), 6);
  EXPECT_EQ(f->MaxVar(), 2);
  EXPECT_EQ(f->ToString(), "((x0 & x1) | ~x2)");
}

TEST(PropFormulaTest, CnfRoundTrip) {
  Rng rng(3);
  CnfFormula cnf = RandomKSat(4, 6, 3, rng);
  auto formula = CnfToFormula(cnf);
  for (uint64_t bits = 0; bits < 16; ++bits) {
    std::vector<bool> assignment(4);
    for (int v = 0; v < 4; ++v) assignment[v] = (bits >> v) & 1;
    EXPECT_EQ(formula->Evaluate(assignment), cnf.Evaluate(assignment));
  }
}

TEST(QbfTest, TautologyAndContradiction) {
  // ∀p ∃q (p ↔ q) as (p&q)|(~p&~q): true.
  auto matrix = PropFormula::Or(
      PropFormula::And(PropFormula::Var(0), PropFormula::Var(1)),
      PropFormula::And(PropFormula::Not(PropFormula::Var(0)),
                       PropFormula::Not(PropFormula::Var(1))));
  EXPECT_TRUE(EvaluatePi2({1, 1, matrix}));
  // ∀p ∃q (p & q): false (p = false kills it).
  auto bad = PropFormula::And(PropFormula::Var(0), PropFormula::Var(1));
  EXPECT_FALSE(EvaluatePi2({1, 1, bad}));
  // ∃-only block: satisfiability.
  EXPECT_TRUE(EvaluatePi2({0, 2, bad}));
}

TEST(QbfTest, NoExistentials) {
  // ∀p (p | ~p): true; ∀p p: false.
  auto taut = PropFormula::Or(PropFormula::Var(0),
                              PropFormula::Not(PropFormula::Var(0)));
  EXPECT_TRUE(EvaluatePi2({1, 0, taut}));
  EXPECT_FALSE(EvaluatePi2({1, 0, PropFormula::Var(0)}));
}

TEST(DnfTest, EvaluateAndTautology) {
  DnfFormula f;
  f.num_vars = 2;
  f.disjuncts = {{{0, true}}, {{0, false}, {1, true}}, {{0, false}, {1, false}}};
  EXPECT_TRUE(IsTautology(f));
  DnfFormula g;
  g.num_vars = 2;
  g.disjuncts = {{{0, true}}, {{1, true}}};
  EXPECT_FALSE(IsTautology(g));
  EXPECT_TRUE(g.Evaluate({true, false}));
  EXPECT_FALSE(g.Evaluate({false, false}));
}

TEST(DnfTest, CompleteTautology) {
  for (int k = 1; k <= 4; ++k) {
    DnfFormula f = CompleteTautology(k);
    EXPECT_EQ(f.disjuncts.size(), size_t{1} << k);
    EXPECT_TRUE(IsTautology(f));
  }
}

class DnfRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DnfRandomTest, TautologyAgreesWithBruteForce) {
  Rng rng(GetParam() + 100);
  int num_vars = rng.UniformInt(1, 5);
  DnfFormula f = RandomDnf(num_vars, rng.UniformInt(1, 12),
                           std::min(2, num_vars), rng);
  bool brute = true;
  for (uint64_t bits = 0; bits < (uint64_t{1} << num_vars); ++bits) {
    std::vector<bool> assignment(num_vars);
    for (int v = 0; v < num_vars; ++v) assignment[v] = (bits >> v) & 1;
    if (!f.Evaluate(assignment)) {
      brute = false;
      break;
    }
  }
  EXPECT_EQ(IsTautology(f), brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfRandomTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace iodb
