// Conjunctive query minimization via Proposition 2.10 containment.

#include <gtest/gtest.h>

#include "containment/minimize.h"

namespace iodb {
namespace {

VocabularyPtr MakeVocab() {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("E", {Sort::kObject, Sort::kObject});
  vocab->MustAddPredicate("A", {Sort::kOrder});
  return vocab;
}

TEST(MinimizeTest, ClassicRedundantAtom) {
  // {(): E(x,y) & E(y,z) & E(u,v)}: the detached E(u,v) folds into the
  // path; minimization leaves two atoms.
  auto vocab = MakeVocab();
  QueryConjunct body;
  body.Exists("x").Exists("y").Exists("z").Exists("u").Exists("v");
  body.Atom("E", {"x", "y"}).Atom("E", {"y", "z"}).Atom("E", {"u", "v"});
  RelationalQuery query{body, {}};
  MinimizeStats stats;
  Result<RelationalQuery> minimized =
      MinimizeQuery(query, vocab, OrderSemantics::kFinite, &stats);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value().body.proper_atoms.size(), 2u);
  EXPECT_EQ(stats.proper_atoms_removed, 1);
  EXPECT_EQ(stats.variables_removed, 2);  // u, v gone
  // Result is equivalent to the original.
  Result<bool> equivalent = Equivalent(query, minimized.value(), vocab,
                                       OrderSemantics::kFinite);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(equivalent.value());
}

TEST(MinimizeTest, CoreIsAlreadyMinimal) {
  // A self-loop query E(x,x) has nothing to remove.
  auto vocab = MakeVocab();
  QueryConjunct body;
  body.Exists("x");
  body.Atom("E", {"x", "x"});
  RelationalQuery query{body, {}};
  MinimizeStats stats;
  Result<RelationalQuery> minimized =
      MinimizeQuery(query, vocab, OrderSemantics::kFinite, &stats);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value().body.proper_atoms.size(), 1u);
  EXPECT_EQ(stats.proper_atoms_removed, 0);
}

TEST(MinimizeTest, WeakOrderAtomCollapses) {
  // {(): A(t1) & A(t2) & t1 <= t2} is equivalent to {(): A(t)}: the "<="
  // can be witnessed with t1 = t2.
  auto vocab = MakeVocab();
  QueryConjunct body;
  body.Exists("t1").Exists("t2");
  body.Atom("A", {"t1"}).Atom("A", {"t2"});
  body.Order("t1", OrderRel::kLe, "t2");
  RelationalQuery query{body, {}};
  Result<RelationalQuery> minimized =
      MinimizeQuery(query, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value().body.proper_atoms.size(), 1u);
  EXPECT_TRUE(minimized.value().body.order_atoms.empty());
}

TEST(MinimizeTest, StrictOrderAtomIsLoadBearing) {
  // {(): A(t1) & A(t2) & t1 < t2} demands two A-points: nothing drops
  // except nothing — removing "<" or either atom changes the query.
  auto vocab = MakeVocab();
  QueryConjunct body;
  body.Exists("t1").Exists("t2");
  body.Atom("A", {"t1"}).Atom("A", {"t2"});
  body.Order("t1", OrderRel::kLt, "t2");
  RelationalQuery query{body, {}};
  MinimizeStats stats;
  Result<RelationalQuery> minimized =
      MinimizeQuery(query, vocab, OrderSemantics::kFinite, &stats);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value().body.proper_atoms.size(), 2u);
  EXPECT_EQ(minimized.value().body.order_atoms.size(), 1u);
  EXPECT_GT(stats.containment_checks, 0);
}

TEST(MinimizeTest, TransitiveOrderAtomDrops) {
  // t1 < t2 < t3 plus derived t1 < t3: the derived atom is redundant.
  auto vocab = MakeVocab();
  QueryConjunct body;
  body.Exists("t1").Exists("t2").Exists("t3");
  body.Atom("A", {"t1"}).Atom("A", {"t2"}).Atom("A", {"t3"});
  body.Order("t1", OrderRel::kLt, "t2");
  body.Order("t2", OrderRel::kLt, "t3");
  body.Order("t1", OrderRel::kLt, "t3");
  RelationalQuery query{body, {}};
  MinimizeStats stats;
  Result<RelationalQuery> minimized =
      MinimizeQuery(query, vocab, OrderSemantics::kFinite, &stats);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value().body.order_atoms.size(), 2u);
  EXPECT_EQ(stats.order_atoms_removed, 1);
}

TEST(MinimizeTest, HeadVariablesBlockFolding) {
  // {x: E(x,y) & E(z,y)}: z cannot fold into the head variable x... it
  // can fold (z -> x) because z is existential: the atoms collapse.
  auto vocab = MakeVocab();
  QueryConjunct body;
  body.Exists("x").Exists("y").Exists("z");
  body.Atom("E", {"x", "y"}).Atom("E", {"z", "y"});
  RelationalQuery query{body, {"x"}};
  Result<RelationalQuery> minimized =
      MinimizeQuery(query, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value().body.proper_atoms.size(), 1u);
  // The kept atom must still mention the head variable x.
  bool mentions_x = false;
  for (const QueryTerm& term : minimized.value().body.proper_atoms[0].args) {
    if (term.name == "x") mentions_x = true;
  }
  EXPECT_TRUE(mentions_x);
}

}  // namespace
}  // namespace iodb
