#include <gtest/gtest.h>

#include <set>

#include "core/minimal_models.h"
#include "core/model.h"
#include "core/model_check.h"
#include "core/parser.h"

namespace iodb {
namespace {

Result<NormDb> ParseNorm(const std::string& text, VocabularyPtr vocab) {
  Result<Database> db = ParseDatabase(text, std::move(vocab));
  if (!db.ok()) return db.status();
  return Normalize(db.value());
}

TEST(MinimalModelsTest, Example24HasFiveSorts) {
  // u < v < w, u <= t <= w: t can sit at u, between u and v, at v,
  // between v and w, or at w — five minimal models.
  auto vocab = std::make_shared<Vocabulary>();
  Result<NormDb> db = ParseNorm("u < v < w\nu <= t\nt <= w", vocab);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(CountMinimalModels(db.value()), 5);
}

TEST(MinimalModelsTest, Example24ContainsThePaperSort) {
  // The Example 2.4 sort: f(u)=f(t)=x1, f(v)=x2, f(w)=x3.
  auto vocab = std::make_shared<Vocabulary>();
  Result<NormDb> db = ParseNorm("u < v < w\nu <= t\nt <= w", vocab);
  ASSERT_TRUE(db.ok());
  bool found = false;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    if (groups.size() == 3 && groups[0].size() == 2) found = true;
    return true;
  };
  ForEachMinimalModel(db.value(), visitor);
  EXPECT_TRUE(found);
}

TEST(MinimalModelsTest, Example27FactsLand) {
  // Example 2.7: B(a,t), B(b,w) with the Example 2.4 order atoms. In the
  // model merging u and t, the facts hold at points x1 and x3.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("B", {Sort::kObject, Sort::kOrder});
  Result<Database> db = ParseDatabase(R"(
    u < v < w
    u <= t
    t <= w
    B(a, t)
    B(b, w)
  )",
                                      vocab);
  ASSERT_TRUE(db.ok());
  Result<NormDb> norm = Normalize(db.value());
  ASSERT_TRUE(norm.ok());
  std::optional<FiniteModel> merged;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    if (groups.size() == 3 && groups[0].size() == 2) {
      merged = BuildMinimalModel(norm.value(), groups);
      return false;
    }
    return true;
  };
  ForEachMinimalModel(norm.value(), visitor);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->num_points, 3);
  ASSERT_EQ(merged->other_facts.size(), 2u);
  // B(a, ·) holds at model point 0 (u=t), B(b, ·) at point 2 (w).
  std::set<int> fact_points;
  for (const ProperAtom& fact : merged->other_facts) {
    fact_points.insert(fact.args[1].id);
  }
  EXPECT_EQ(fact_points, (std::set<int>{0, 2}));
}

TEST(MinimalModelsTest, SingleChainHasOneModel) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<NormDb> db = ParseNorm("a < b < c", vocab);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(CountMinimalModels(db.value()), 1);
}

TEST(MinimalModelsTest, TwoIncomparablePointsHaveThreeModels) {
  // u, v unordered: u<v, v<u, u=v.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Result<NormDb> db = ParseNorm("P(u)\nP(v)", vocab);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(CountMinimalModels(db.value()), 3);
}

TEST(MinimalModelsTest, InequalityForbidsMerge) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<NormDb> db = ParseNorm("u != v", vocab);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(CountMinimalModels(db.value()), 2);  // u<v and v<u only
}

TEST(MinimalModelsTest, EmptyDatabaseHasOneEmptyModel) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(CountMinimalModels(norm.value()), 1);
}

TEST(MinimalModelsTest, LeEdgeAllowsMerge) {
  // u <= v: two models (u < v and u = v).
  auto vocab = std::make_shared<Vocabulary>();
  Result<NormDb> db = ParseNorm("u <= v", vocab);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(CountMinimalModels(db.value()), 2);
}

TEST(MinimalModelsTest, DelannoyCountForTwoChains) {
  // Two chains of length 2 with strict edges: orderings of {a1<a2} and
  // {b1<b2} with merges allowed = Delannoy D(2,2) = 13.
  auto vocab = std::make_shared<Vocabulary>();
  Result<NormDb> db = ParseNorm("a1 < a2\nb1 < b2", vocab);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(CountMinimalModels(db.value()), 13);
}

TEST(MinimalModelsTest, PruningStopsBranch) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<NormDb> db = ParseNorm("a1 < a2\nb1 < b2", vocab);
  ASSERT_TRUE(db.ok());
  long long models = 0;
  ModelVisitor visitor;
  // Prune every branch at depth 0: no complete models.
  visitor.on_group = [](int depth, const std::vector<int>&) {
    return depth != 0;
  };
  visitor.on_model = [&](const std::vector<std::vector<int>>&) {
    ++models;
    return true;
  };
  EXPECT_TRUE(ForEachMinimalModel(db.value(), visitor));
  EXPECT_EQ(models, 0);
}

TEST(ModelCheckTest, MonadicLabels) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("Q", {Sort::kOrder});
  Result<Database> db = ParseDatabase("P(u)\nQ(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  Result<NormDb> norm = Normalize(db.value());
  ASSERT_TRUE(norm.ok());
  FiniteModel model = BuildMinimalModel(norm.value(), {{0}, {1}});

  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("t1").Exists("t2");
  c.Atom("P", {"t1"}).Atom("Q", {"t2"});
  c.Order("t1", OrderRel::kLt, "t2");
  Result<NormQuery> nq = NormalizeQuery(query);
  ASSERT_TRUE(nq.ok());
  EXPECT_TRUE(Satisfies(model, nq.value()));

  // Reversed order fails.
  Query bad(vocab);
  QueryConjunct& d = bad.AddDisjunct();
  d.Exists("t1").Exists("t2");
  d.Atom("Q", {"t1"}).Atom("P", {"t2"});
  d.Order("t1", OrderRel::kLt, "t2");
  Result<NormQuery> nbad = NormalizeQuery(bad);
  ASSERT_TRUE(nbad.ok());
  EXPECT_FALSE(Satisfies(model, nbad.value()));
}

TEST(ModelCheckTest, NaryFactsAndObjectVars) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("B", {Sort::kObject, Sort::kOrder});
  Result<Database> db = ParseDatabase("B(a, t1)\nB(b, t2)\nt1 < t2", vocab);
  ASSERT_TRUE(db.ok());
  Result<NormDb> norm = Normalize(db.value());
  ASSERT_TRUE(norm.ok());
  FiniteModel model = BuildMinimalModel(norm.value(), {{0}, {1}});

  // ∃x s1 s2: B(x, s1) ∧ B(x, s2) ∧ s1 < s2 — false (different objects).
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("x").Exists("s1").Exists("s2");
  c.Atom("B", {"x", "s1"}).Atom("B", {"x", "s2"});
  c.Order("s1", OrderRel::kLt, "s2");
  Result<NormQuery> nq = NormalizeQuery(query);
  ASSERT_TRUE(nq.ok());
  EXPECT_FALSE(Satisfies(model, nq.value()));

  // ∃x y s1 s2: B(x,s1) ∧ B(y,s2) ∧ s1 < s2 — true.
  Query query2(vocab);
  QueryConjunct& c2 = query2.AddDisjunct();
  c2.Exists("x").Exists("y").Exists("s1").Exists("s2");
  c2.Atom("B", {"x", "s1"}).Atom("B", {"y", "s2"});
  c2.Order("s1", OrderRel::kLt, "s2");
  Result<NormQuery> nq2 = NormalizeQuery(query2);
  ASSERT_TRUE(nq2.ok());
  EXPECT_TRUE(Satisfies(model, nq2.value()));
}

TEST(ModelCheckTest, InequalityInQuery) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Result<Database> db = ParseDatabase("P(u)\nP(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  Result<NormDb> norm = Normalize(db.value());
  ASSERT_TRUE(norm.ok());

  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("t1").Exists("t2");
  c.Atom("P", {"t1"}).Atom("P", {"t2"});
  c.NotEqual("t1", "t2");
  Result<NormQuery> nq = NormalizeQuery(query);
  ASSERT_TRUE(nq.ok());
  // Two distinct points: satisfied; single merged point: not.
  EXPECT_TRUE(Satisfies(BuildMinimalModel(norm.value(), {{0}, {1}}),
                        nq.value()));
  auto vocab2 = std::make_shared<Vocabulary>();
  vocab2->MustAddPredicate("P", {Sort::kOrder});
  Result<Database> db2 = ParseDatabase("P(u)\nP(v)", vocab2);
  ASSERT_TRUE(db2.ok());
  Result<NormDb> norm2 = Normalize(db2.value());
  ASSERT_TRUE(norm2.ok());
  EXPECT_FALSE(Satisfies(BuildMinimalModel(norm2.value(), {{0, 1}}),
                         nq.value()));
}

TEST(ModelCheckTest, FixedVariables) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Result<Database> db = ParseDatabase("P(u)\nQ2(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  Result<NormDb> norm = Normalize(db.value());
  ASSERT_TRUE(norm.ok());
  FiniteModel model = BuildMinimalModel(norm.value(), {{0}, {1}});

  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("t");
  c.Atom("P", {"t"});
  Result<NormQuery> nq = NormalizeQuery(query);
  ASSERT_TRUE(nq.ok());
  const NormConjunct& conjunct = nq.value().disjuncts[0];
  // P holds at point 0 but not point 1.
  EXPECT_TRUE(SatisfiesWithFixed(model, conjunct,
                                 {{Term{Sort::kOrder, 0}, 0}}));
  EXPECT_FALSE(SatisfiesWithFixed(model, conjunct,
                                  {{Term{Sort::kOrder, 0}, 1}}));
}

}  // namespace
}  // namespace iodb
