// ParallelEvaluateBatch and the sharded brute-force enumeration: the
// parallel paths must return results identical to their serial
// counterparts — verdict, engine, and countermodel — regardless of
// worker count, with results landing in their input slots.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/entail_bruteforce.h"
#include "core/parser.h"
#include "core/prepare.h"
#include "util/parallel.h"
#include "util/random.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace iodb {
namespace {

void ExpectSameResults(const std::vector<Result<EntailResult>>& serial,
                       const std::vector<Result<EntailResult>>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].ok(), parallel[i].ok()) << "slot " << i;
    if (!serial[i].ok()) continue;
    EXPECT_EQ(serial[i].value().entailed, parallel[i].value().entailed)
        << "slot " << i;
    EXPECT_EQ(serial[i].value().engine_used, parallel[i].value().engine_used)
        << "slot " << i;
    ASSERT_EQ(serial[i].value().countermodel.has_value(),
              parallel[i].value().countermodel.has_value())
        << "slot " << i;
    if (serial[i].value().countermodel.has_value()) {
      EXPECT_EQ(serial[i].value().countermodel->ToString(),
                parallel[i].value().countermodel->ToString())
          << "slot " << i;
    }
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int workers : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(33);
    for (auto& h : hits) h = 0;
    ParallelFor(33, workers, [&](int i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "workers " << workers << " i " << i;
    }
  }
}

TEST(ParallelEvaluateBatchTest, SchedulingFleetMatchesSerial) {
  auto vocab = std::make_shared<Vocabulary>();
  std::vector<SchedulingScenario> fleet;
  for (int i = 0; i < 12; ++i) {
    Rng rng(900 + i);
    fleet.push_back(MakeSchedulingScenario(2, 4, rng, vocab));
  }
  PreparedQuery plan = PrepareForbiddenPlan(fleet[0]);
  std::vector<const Database*> dbs;
  for (const SchedulingScenario& scenario : fleet) dbs.push_back(&scenario.db);

  const std::vector<Result<EntailResult>> serial = plan.EvaluateBatch(dbs);
  for (int workers : {2, 4}) {
    ExpectSameResults(serial, plan.ParallelEvaluateBatch(dbs, workers));
  }
}

TEST(ParallelEvaluateBatchTest, DuplicateDatabasePointersShareOneEvaluation) {
  auto vocab = std::make_shared<Vocabulary>();
  Rng rng(42);
  SchedulingScenario scenario = MakeSchedulingScenario(2, 3, rng, vocab);
  PreparedQuery plan = PrepareForbiddenPlan(scenario);
  std::vector<const Database*> dbs(5, &scenario.db);
  const std::vector<Result<EntailResult>> serial = plan.EvaluateBatch(dbs);
  ExpectSameResults(serial, plan.ParallelEvaluateBatch(dbs, 4));
}

TEST(ParallelEvaluateBatchTest, TransformPlansShareTheGuardedCache) {
  // A query with constants forces the per-plan transformed-db cache (the
  // markers must be injected per database); parallel workers share it.
  auto vocab = std::make_shared<Vocabulary>();
  std::vector<Database> fleet;
  for (int i = 0; i < 8; ++i) {
    Rng rng(3000 + i);
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 2;
    Database db = RandomMonadicDb(params, vocab, rng);
    db.GetOrAddConstant("pivot", Sort::kOrder);
    db.AddOrder("c0_0", OrderRel::kLe, "pivot");
    fleet.push_back(std::move(db));
  }
  Result<Query> query =
      ParseQuery("exists t: P0(t) & pivot <= t", vocab);
  ASSERT_TRUE(query.ok());
  Result<PreparedQuery> plan = Prepare(vocab, query.value());
  ASSERT_TRUE(plan.ok());

  std::vector<const Database*> dbs;
  for (const Database& db : fleet) dbs.push_back(&db);
  const std::vector<Result<EntailResult>> serial =
      plan.value().EvaluateBatch(dbs);
  for (int round = 0; round < 3; ++round) {  // warm + cached rounds
    ExpectSameResults(serial, plan.value().ParallelEvaluateBatch(dbs, 4));
  }
}

TEST(ParallelBruteForceTest, SubtreeShardingMatchesSerialOnRandomCorpus) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    auto vocab = std::make_shared<Vocabulary>();
    Rng rng(seed);
    MonadicDbParams params;
    params.num_chains = rng.UniformInt(1, 3);
    params.chain_length = rng.UniformInt(1, 3);
    params.num_predicates = 2;
    params.le_probability = 0.4;
    Database db = RandomMonadicDb(params, vocab, rng);
    Query query = RandomDisjunctiveSequentialQuery(
        rng.UniformInt(1, 2), rng.UniformInt(1, 3), 2, 0.5, 0.4, vocab, rng);
    Result<NormQuery> norm_query = NormalizeQuery(query);
    ASSERT_TRUE(norm_query.ok());
    Result<NormDb> norm = Normalize(db);
    ASSERT_TRUE(norm.ok());

    const BruteForceOutcome serial =
        EntailBruteForce(norm.value(), norm_query.value());
    for (int workers : {2, 4}) {
      BruteForceOptions options;
      options.num_threads = workers;
      const BruteForceOutcome parallel =
          EntailBruteForce(norm.value(), norm_query.value(), options);
      EXPECT_EQ(parallel.entailed, serial.entailed)
          << "seed " << seed << " workers " << workers;
      ASSERT_EQ(parallel.countermodel.has_value(),
                serial.countermodel.has_value())
          << "seed " << seed << " workers " << workers;
      if (serial.countermodel.has_value()) {
        // The deterministic merge reports exactly the serial search's
        // countermodel (first one of the lowest subtree containing any).
        EXPECT_EQ(parallel.countermodel->ToString(),
                  serial.countermodel->ToString())
            << "seed " << seed << " workers " << workers;
      }
      if (serial.entailed) {
        // No early exit: the sharded counters are exact — including the
        // reachability-probe counters (the parallel engine counts the
        // depth-0 probes once, in the root-collection pass, and each
        // subtree worker counts exactly its own subtree's probes).
        EXPECT_EQ(parallel.models_enumerated, serial.models_enumerated)
            << "seed " << seed << " workers " << workers;
        EXPECT_EQ(parallel.prefixes_pruned, serial.prefixes_pruned)
            << "seed " << seed << " workers " << workers;
        EXPECT_EQ(parallel.check_stats.reach_probes,
                  serial.check_stats.reach_probes)
            << "seed " << seed << " workers " << workers;
        EXPECT_EQ(parallel.check_stats.reach_fast_hits,
                  serial.check_stats.reach_fast_hits)
            << "seed " << seed << " workers " << workers;
        EXPECT_EQ(parallel.check_stats.reach_fallbacks,
                  serial.check_stats.reach_fallbacks)
            << "seed " << seed << " workers " << workers;
        EXPECT_EQ(parallel.check_stats.index_rebuilds,
                  serial.check_stats.index_rebuilds)
            << "seed " << seed << " workers " << workers;
        EXPECT_EQ(parallel.check_stats.assignments_tried,
                  serial.check_stats.assignments_tried)
            << "seed " << seed << " workers " << workers;
      }
    }
  }
}

TEST(ParallelEvaluateBatchTest, BatchSlotsReportIdenticalCounters) {
  // Counter-aggregation audit: per-worker ModelCheckStats must merge into
  // each slot exactly once — a serial batch and a 4-worker batch report
  // identical per-slot counters, and duplicate database pointers (which
  // the parallel path dedups and copies) must carry the counters too.
  auto vocab = std::make_shared<Vocabulary>();
  std::vector<SchedulingScenario> fleet;
  for (int i = 0; i < 6; ++i) {
    Rng rng(4400 + i);
    fleet.push_back(MakeSchedulingScenario(2, 4, rng, vocab));
  }
  PreparedQuery plan = PrepareForbiddenPlan(fleet[0]);
  std::vector<const Database*> dbs;
  for (const SchedulingScenario& scenario : fleet) dbs.push_back(&scenario.db);
  dbs.push_back(&fleet[2].db);  // duplicate slots
  dbs.push_back(&fleet[0].db);

  const std::vector<Result<EntailResult>> serial = plan.EvaluateBatch(dbs);
  const std::vector<Result<EntailResult>> parallel =
      plan.ParallelEvaluateBatch(dbs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].ok(), parallel[i].ok()) << "slot " << i;
    if (!serial[i].ok()) continue;
    const ModelCheckStats& s = serial[i].value().check_stats;
    const ModelCheckStats& p = parallel[i].value().check_stats;
    EXPECT_EQ(p.assignments_tried, s.assignments_tried) << "slot " << i;
    EXPECT_EQ(p.index_probes, s.index_probes) << "slot " << i;
    EXPECT_EQ(p.facts_scanned, s.facts_scanned) << "slot " << i;
    EXPECT_EQ(p.reach_probes, s.reach_probes) << "slot " << i;
    EXPECT_EQ(p.reach_fast_hits, s.reach_fast_hits) << "slot " << i;
    EXPECT_EQ(p.reach_fallbacks, s.reach_fallbacks) << "slot " << i;
    EXPECT_EQ(p.index_rebuilds, s.index_rebuilds) << "slot " << i;
  }
}

TEST(ParallelEvaluateBatchTest, SingleDatabaseShardsTheEnumeration) {
  // One hard brute-force query: the batch API shards enumeration subtrees.
  auto vocab = std::make_shared<Vocabulary>();
  Rng rng(77);
  MonadicDbParams params;
  params.num_chains = 3;
  params.chain_length = 3;
  params.num_predicates = 2;
  Database db = RandomMonadicDb(params, vocab, rng);
  db.AddNotEqual("c0_0", "c1_0");  // inequality forces brute force
  Query query = RandomSequentialQuery(3, 2, 0.5, 0.4, vocab, rng);
  EntailOptions brute;
  brute.engine = EngineKind::kBruteForce;
  Result<PreparedQuery> plan = Prepare(vocab, query, brute);
  ASSERT_TRUE(plan.ok());

  std::vector<const Database*> dbs{&db};
  const std::vector<Result<EntailResult>> serial =
      plan.value().EvaluateBatch(dbs);
  ExpectSameResults(serial, plan.value().ParallelEvaluateBatch(dbs, 4));
}

}  // namespace
}  // namespace iodb
