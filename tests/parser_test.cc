#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/printer.h"

namespace iodb {
namespace {

TEST(ParseDatabaseTest, Example11Database) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(R"(
    # the guard's log
    pred IC(order, order, object)
    IC(z1, z2, A)
    IC(z3, z4, B)
    z1 < z2 < z3 < z4
    # agent A's testimony
    IC(u1, u3, A); IC(u2, u4, B)
    u1 < u2 < u3 < u4
  )",
                                      vocab);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db.value().num_order_constants(), 8);
  EXPECT_EQ(db.value().num_object_constants(), 2);
  EXPECT_EQ(db.value().proper_atoms().size(), 4u);
  EXPECT_EQ(db.value().order_atoms().size(), 6u);
}

TEST(ParseDatabaseTest, SortInferenceFromChains) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(R"(
    P(u)
    u < v
  )",
                                      vocab);
  ASSERT_TRUE(db.ok());
  // u occurs in a chain, so it is order-sort and P is monadic-order.
  EXPECT_TRUE(
      vocab->predicate(*vocab->FindPredicate("P")).IsMonadicOrder());
}

TEST(ParseDatabaseTest, DefaultObjectSort) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("Likes(alice, bob)", vocab);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().num_object_constants(), 2);
  EXPECT_EQ(db.value().num_order_constants(), 0);
}

TEST(ParseDatabaseTest, MixedRelationsAndInequality) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("u < v <= w != t", vocab);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().order_atoms().size(), 2u);
  EXPECT_EQ(db.value().inequalities().size(), 1u);
}

TEST(ParseDatabaseTest, Errors) {
  auto vocab = std::make_shared<Vocabulary>();
  EXPECT_FALSE(ParseDatabase("P(u", vocab).ok());
  EXPECT_FALSE(ParseDatabase("u <", vocab).ok());
  EXPECT_FALSE(ParseDatabase("pred P(intsort)", vocab).ok());
  EXPECT_FALSE(ParseDatabase("!", vocab).ok());
  EXPECT_FALSE(ParseDatabase("$bad", vocab).ok());
}

TEST(ParseQueryTest, DisjunctiveQuery) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(ParseDatabase("P(u)\nQ(v)\nu < v", vocab).ok());
  Result<Query> query = ParseQuery(
      "exists t1 t2: P(t1) & t1 < t2 & Q(t2) | exists t: Q(t)", vocab);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query.value().disjuncts().size(), 2u);
  EXPECT_FALSE(query.value().HasConstants());
  Result<NormQuery> norm = NormalizeQuery(query.value());
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm.value().disjuncts[0].num_order_vars(), 2);
  EXPECT_TRUE(norm.value().disjuncts[0].IsSequential());
}

TEST(ParseQueryTest, ConstantsDetected) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(ParseDatabase("P(u)\nu < v", vocab).ok());
  Result<Query> query = ParseQuery("exists t: P(t) & u < t", vocab);
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query.value().HasConstants());
}

TEST(ParseQueryTest, ChainsAndInequalities) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(ParseDatabase("P(u)\nu<v", vocab).ok());
  Result<Query> query =
      ParseQuery("exists a b c: P(a) & a < b <= c & a != c", vocab);
  ASSERT_TRUE(query.ok());
  const QueryConjunct& c = query.value().disjuncts()[0];
  EXPECT_EQ(c.order_atoms.size(), 2u);
  EXPECT_EQ(c.inequalities.size(), 1u);
}

TEST(ParseQueryTest, Errors) {
  auto vocab = std::make_shared<Vocabulary>();
  EXPECT_FALSE(ParseQuery("exists t P(t)", vocab).ok());   // missing ':'
  EXPECT_FALSE(ParseQuery("exists t: P(t) &", vocab).ok());
  EXPECT_FALSE(ParseQuery("exists t: t", vocab).ok());
  EXPECT_FALSE(ParseQuery("exists t: P(t) extra", vocab).ok());
}

TEST(ParseRoundTripTest, DatabaseSurvivesPrintParse) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(R"(
    pred B(object, order)
    B(a, t1)
    B(b, t2)
    t1 < t2 <= t3
  )",
                                      vocab);
  ASSERT_TRUE(db.ok());
  std::string text = ToString(db.value());
  auto vocab2 = std::make_shared<Vocabulary>();
  vocab2->MustAddPredicate("B", {Sort::kObject, Sort::kOrder});
  Result<Database> reparsed = ParseDatabase(text, vocab2);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(reparsed.value().proper_atoms().size(),
            db.value().proper_atoms().size());
  EXPECT_EQ(reparsed.value().order_atoms().size(),
            db.value().order_atoms().size());
}

}  // namespace
}  // namespace iodb
