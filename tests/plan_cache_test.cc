// Plan cache unit tests: LRU mechanics, revision-based invalidation
// through the service (a mutated database must never be served from a
// stale derived structure), and a multi-threaded hammer that runs under
// the TSan CI job.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/prepare.h"
#include "service/plan_cache.h"
#include "service/service.h"
#include "util/random.h"

namespace iodb {
namespace {

// A minimal compiled plan to populate cache slots with.
std::shared_ptr<const PreparedQuery> TrivialPlan() {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Query query(vocab);
  query.AddDisjunct().Exists("t").Atom("P", {"t"});
  return std::make_shared<const PreparedQuery>(MustPrepare(vocab, query));
}

PlanKey Key(uint64_t fingerprint) { return PlanKey{1, fingerprint}; }

TEST(PlanCacheTest, EvictsLeastRecentlyUsedInOrder) {
  PlanCache cache(3);
  std::shared_ptr<const PreparedQuery> plan = TrivialPlan();
  cache.Put(Key(1), plan);
  cache.Put(Key(2), plan);
  cache.Put(Key(3), plan);
  EXPECT_EQ(cache.KeysByRecency(),
            (std::vector<PlanKey>{Key(3), Key(2), Key(1)}));

  // A hit refreshes recency, so key 2 becomes the LRU victim.
  EXPECT_NE(cache.Get(Key(1)), nullptr);
  cache.Put(Key(4), plan);
  EXPECT_EQ(cache.KeysByRecency(),
            (std::vector<PlanKey>{Key(4), Key(1), Key(3)}));
  EXPECT_EQ(cache.Get(Key(2)), nullptr);

  // Overflowing further evicts in LRU order: 3, then 1.
  cache.Put(Key(5), plan);
  EXPECT_EQ(cache.Get(Key(3)), nullptr);
  cache.Put(Key(6), plan);
  EXPECT_EQ(cache.Get(Key(1)), nullptr);

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 3);
  EXPECT_EQ(stats.entries, 3);
  EXPECT_EQ(stats.capacity, 3);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
}

TEST(PlanCacheTest, ReplacingAKeyIsNotAnEviction) {
  PlanCache cache(2);
  std::shared_ptr<const PreparedQuery> plan = TrivialPlan();
  cache.Put(Key(1), plan);
  cache.Put(Key(2), plan);
  cache.Put(Key(1), plan);  // replacement, refreshes recency
  EXPECT_EQ(cache.KeysByRecency(),
            (std::vector<PlanKey>{Key(1), Key(2)}));
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(PlanCacheTest, EvictedPlansStayAliveForHolders) {
  PlanCache cache(1);
  std::shared_ptr<const PreparedQuery> plan = TrivialPlan();
  cache.Put(Key(1), plan);
  std::shared_ptr<const PreparedQuery> held = cache.Get(Key(1));
  ASSERT_NE(held, nullptr);
  cache.Put(Key(2), TrivialPlan());  // evicts key 1
  EXPECT_EQ(cache.Get(Key(1)), nullptr);
  // The holder's pointer is unaffected by the eviction.
  EXPECT_EQ(held->disjuncts().size(), 1u);
}

// Mutating a registered database must not serve a stale derived view.
// The constant query compiles to a plan that transforms the database
// (marker-fact injection) and caches the transformed view keyed by
// (uid, revision) — the mutation bumps the revision, so the next request
// recomputes even though the plan itself is a cache hit.
TEST(PlanCacheInvalidationTest, MutationInvalidatesTransformedPlanView) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("db", "P(u)\nu < v").ok());

  EvalRequest request;
  request.db = "db";
  request.query = "exists t: P(t) & t < c";  // c is a constant
  // Costing off: this test asserts EXACT plan reuse across a mutation,
  // and with costing the mutation below changes statistics magnitudes
  // (a new constant and edge), which correctly re-keys the plan.
  request.costing = 0;
  Result<EvalResponse> before = service.Eval(request);
  ASSERT_TRUE(before.ok());
  // Nothing orders any P-point below c, so some minimal completion
  // places c first: not entailed.
  EXPECT_FALSE(before.value().entailed);
  EXPECT_FALSE(before.value().plan_cache_hit);

  // Same request again: plan hit, same verdict.
  Result<EvalResponse> again = service.Eval(request);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().entailed);
  EXPECT_TRUE(again.value().plan_cache_hit);

  // Mutate the registered database: now u < c is asserted, so P(u) sits
  // below c in every completion.
  ASSERT_TRUE(service
                  .Mutate("db",
                          [](Database* db) {
                            db->AddOrder("u", OrderRel::kLt, "c");
                            return Status::Ok();
                          })
                  .ok());
  Result<EvalResponse> after = service.Eval(request);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().plan_cache_hit);  // the plan itself is reused
  EXPECT_TRUE(after.value().entailed);        // ... but not its stale view
}

// Same property for plain (transform-free) plans, which evaluate through
// the database's memoized NormView.
TEST(PlanCacheInvalidationTest, MutationInvalidatesNormView) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("db", "P(u)\nQ(v)\nu < v").ok());

  EvalRequest request;
  request.db = "db";
  request.query = "exists t1 t2: Q(t1) & t1 < t2";
  request.costing = 0;  // exact plan reuse across the mutation (as above)
  Result<EvalResponse> before = service.Eval(request);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.value().entailed);  // nothing above the Q-point

  ASSERT_TRUE(service
                  .Mutate("db",
                          [](Database* db) {
                            db->AddOrder("v", OrderRel::kLt, "w");
                            return Status::Ok();
                          })
                  .ok());
  Result<EvalResponse> after = service.Eval(request);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().plan_cache_hit);
  EXPECT_TRUE(after.value().entailed);
}

// Multi-threaded hammer (run under the TSan CI job): concurrent Get/Put
// over a key space larger than the capacity, with stats and recency
// snapshots mixed in, so hits, misses, evictions and refreshes all race.
TEST(PlanCacheTest, ConcurrentHammer) {
  PlanCache cache(8);
  std::shared_ptr<const PreparedQuery> plan = TrivialPlan();
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &plan, t] {
      Rng rng(static_cast<uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        PlanKey key{rng.Uniform(2) + 1, rng.Uniform(24)};
        if (rng.Bernoulli(0.4)) {
          cache.Put(key, plan);
        } else if (std::shared_ptr<const PreparedQuery> got =
                       cache.Get(key)) {
          // Use the plan through the shared pointer.
          EXPECT_EQ(got->disjuncts().size(), 1u);
        }
        if (i % 512 == 0) {
          (void)cache.stats();
          (void)cache.KeysByRecency();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  PlanCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 8);
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
  EXPECT_GT(stats.evictions, 0);
}

// Concurrent single-request serving on distinct databases: the supported
// multi-threaded use of the service (the plan cache and the plans' own
// evaluation caches are shared across the threads). Constant-free
// queries only — compiling a constant query registers marker predicates
// into the shared vocabulary, which is a single-writer operation.
TEST(PlanCacheTest, ConcurrentServiceEvalOnDistinctDatabases) {
  EvaluationService service;
  constexpr int kThreads = 4;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(service
                    .Load("db" + std::to_string(t),
                          "P(u)\nQ(v)\nu < v\nv < w\nQ(w)")
                    .ok());
  }
  const std::vector<std::string> queries = {
      "exists t1 t2: P(t1) & t1 < t2 & Q(t2)",
      "exists t1 t2: Q(t1) & t1 < t2 & P(t2)",
      "exists t1 t2 t3: P(t1) & t1 < t2 & Q(t2) & t2 < t3 & Q(t3)",
      "exists t: P(t) & Q(t)",
  };
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &queries, t] {
      for (int i = 0; i < 200; ++i) {
        EvalRequest request;
        request.db = "db" + std::to_string(t);
        request.query = queries[static_cast<size_t>(i) % queries.size()];
        Result<EvalResponse> response = service.Eval(request);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * 200);
  EXPECT_EQ(stats.plan_cache.hits + stats.plan_cache.misses,
            kThreads * 200);
  EXPECT_GT(stats.plan_cache.hits, 0);
}

}  // namespace
}  // namespace iodb
