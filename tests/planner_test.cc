// Cost-plan pass tests: the QueryPlanner seam of Prepare() (core/planner.h)
// and the statistics-backed CostModel behind it (src/stats/cost_model.h).
//
// The pass contract under test: planner proposals are strictly advisory —
// Prepare() applies only valid schedules (permutations that are linear
// extensions of the disjunct dag), only genuine disjunct permutations,
// and engine suggestions only under kAuto — and whatever the planner
// says, verdicts never change.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/prepare.h"
#include "stats/cost_model.h"
#include "stats/stats.h"

namespace iodb {
namespace {

// A planner that returns a canned choice, for exercising the validation
// paths of the cost-plan pass in isolation.
class StubPlanner : public QueryPlanner {
 public:
  QueryPlanChoice choice;
  uint64_t fp = 0x5EED;

  QueryPlanChoice PlanQuery(
      const std::vector<NormConjunct>&) const override {
    return choice;
  }
  uint64_t fingerprint() const override { return fp; }
};

VocabularyPtr MonadicVocab() {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("Q", {Sort::kOrder});
  vocab->MustAddPredicate("R", {Sort::kOrder});
  return vocab;
}

// exists t1 t2: P(t1) & Q(t2) — two independent order variables, so
// every permutation of the schedule is a valid linear extension.
Query FreeVarsQuery(const VocabularyPtr& vocab) {
  Query query(vocab);
  query.AddDisjunct().Exists("t1").Exists("t2").Atom("P", {"t1"}).Atom(
      "Q", {"t2"});
  return query;
}

// exists t1 t2: P(t1) & t1 < t2 & Q(t2) — a chain, so the only linear
// extension is the default one.
Query ChainQuery(const VocabularyPtr& vocab) {
  Query query(vocab);
  query.AddDisjunct()
      .Exists("t1")
      .Exists("t2")
      .Atom("P", {"t1"})
      .Order("t1", OrderRel::kLt, "t2")
      .Atom("Q", {"t2"});
  return query;
}

// The default (planner-free) order-variable schedule of disjunct d.
std::vector<int> DefaultSequence(const PreparedQuery& plan, size_t d) {
  std::vector<int> seq;
  for (const auto& [sort, id] : plan.disjuncts()[d].compiled.var_order) {
    if (sort == Sort::kOrder) seq.push_back(id);
  }
  return seq;
}

TEST(CostPlanPass, ValidNonDefaultScheduleIsApplied) {
  VocabularyPtr vocab = MonadicVocab();
  Query query = FreeVarsQuery(vocab);
  PreparedQuery base = MustPrepare(vocab, query);
  std::vector<int> swapped = DefaultSequence(base, 0);
  ASSERT_EQ(swapped.size(), 2u);
  std::swap(swapped[0], swapped[1]);

  auto stub = std::make_shared<StubPlanner>();
  stub->choice.disjuncts = {DisjunctCost{swapped, 42.0}};
  EntailOptions options;
  options.planner = stub;
  PreparedQuery plan = MustPrepare(vocab, query, options);

  EXPECT_TRUE(plan.disjuncts()[0].costed_schedule);
  EXPECT_EQ(DefaultSequence(plan, 0), swapped);
  EXPECT_DOUBLE_EQ(plan.disjuncts()[0].est_cost, 42.0);
  EXPECT_EQ(plan.PlanChoiceSummary(), "costed(sched=1/1,reorder=no)");
  const PassRecord& record = plan.passes().back();
  EXPECT_EQ(record.id, QueryPassId::kCostPlan);
  EXPECT_TRUE(record.applied);
}

TEST(CostPlanPass, IdentityScheduleIsNotCountedAsCosted) {
  VocabularyPtr vocab = MonadicVocab();
  Query query = FreeVarsQuery(vocab);
  PreparedQuery base = MustPrepare(vocab, query);

  auto stub = std::make_shared<StubPlanner>();
  stub->choice.disjuncts = {DisjunctCost{DefaultSequence(base, 0), 7.0}};
  EntailOptions options;
  options.planner = stub;
  PreparedQuery plan = MustPrepare(vocab, query, options);

  EXPECT_FALSE(plan.disjuncts()[0].costed_schedule);
  EXPECT_EQ(plan.PlanChoiceSummary(), "default");
  // The estimate is still recorded for explain output.
  EXPECT_DOUBLE_EQ(plan.disjuncts()[0].est_cost, 7.0);
}

TEST(CostPlanPass, InvalidSchedulesAreIgnored) {
  VocabularyPtr vocab = MonadicVocab();
  Query query = ChainQuery(vocab);
  PreparedQuery base = MustPrepare(vocab, query);
  std::vector<int> reversed = DefaultSequence(base, 0);
  ASSERT_EQ(reversed.size(), 2u);
  std::reverse(reversed.begin(), reversed.end());

  const std::vector<std::vector<int>> bad_sequences = {
      {0},            // wrong length
      {0, 0},         // not a permutation
      {0, 7},         // out of range
      reversed,       // a permutation but not a linear extension
  };
  for (const std::vector<int>& seq : bad_sequences) {
    auto stub = std::make_shared<StubPlanner>();
    stub->choice.disjuncts = {DisjunctCost{seq, 1.0}};
    EntailOptions options;
    options.planner = stub;
    PreparedQuery plan = MustPrepare(vocab, query, options);
    EXPECT_FALSE(plan.disjuncts()[0].costed_schedule);
    EXPECT_EQ(DefaultSequence(plan, 0), DefaultSequence(base, 0));
    EXPECT_EQ(plan.PlanChoiceSummary(), "default");
  }

  // A per-disjunct size mismatch discards the whole proposal.
  auto stub = std::make_shared<StubPlanner>();
  stub->choice.disjuncts = {};
  EntailOptions options;
  options.planner = stub;
  PreparedQuery plan = MustPrepare(vocab, query, options);
  EXPECT_EQ(plan.PlanChoiceSummary(), "default");
  EXPECT_LT(plan.disjuncts()[0].est_cost, 0);  // nothing recorded
}

TEST(CostPlanPass, DisjunctReorderAppliedAndValidated) {
  VocabularyPtr vocab = MonadicVocab();
  Query query(vocab);
  query.AddDisjunct().Exists("t").Atom("P", {"t"});
  query.AddDisjunct().Exists("t").Atom("Q", {"t"});

  auto stub = std::make_shared<StubPlanner>();
  stub->choice.disjuncts = {DisjunctCost{{}, 9.0}, DisjunctCost{{}, 2.0}};
  stub->choice.disjunct_order = {1, 0};
  EntailOptions options;
  options.planner = stub;
  PreparedQuery plan = MustPrepare(vocab, query, options);

  // The cheap disjunct (the Q one) moved to the front, carrying its
  // recorded estimate with it.
  ASSERT_EQ(plan.disjuncts().size(), 2u);
  EXPECT_DOUBLE_EQ(plan.disjuncts()[0].est_cost, 2.0);
  EXPECT_DOUBLE_EQ(plan.disjuncts()[1].est_cost, 9.0);
  EXPECT_EQ(plan.PlanChoiceSummary(), "costed(sched=0/2,reorder=yes)");

  // A non-permutation order is ignored.
  for (const std::vector<int>& bad : {std::vector<int>{0, 0},
                                      std::vector<int>{1, 2},
                                      std::vector<int>{0}}) {
    auto bad_stub = std::make_shared<StubPlanner>();
    bad_stub->choice.disjuncts = {DisjunctCost{{}, 9.0},
                                  DisjunctCost{{}, 2.0}};
    bad_stub->choice.disjunct_order = bad;
    EntailOptions bad_options;
    bad_options.planner = bad_stub;
    PreparedQuery unchanged = MustPrepare(vocab, query, bad_options);
    EXPECT_DOUBLE_EQ(unchanged.disjuncts()[0].est_cost, 9.0);
    EXPECT_EQ(unchanged.PlanChoiceSummary(), "default");
  }
}

TEST(CostPlanPass, EngineSuggestionHonoredOnlyUnderAuto) {
  VocabularyPtr vocab = MonadicVocab();
  Query query = ChainQuery(vocab);

  auto stub = std::make_shared<StubPlanner>();
  stub->choice.engine = EngineKind::kBruteForce;

  EntailOptions auto_options;
  auto_options.planner = stub;
  PreparedQuery routed = MustPrepare(vocab, query, auto_options);
  EXPECT_EQ(routed.PlanChoiceSummary(),
            "costed(sched=0/1,reorder=no,engine=brute-force)");

  // A forced engine wins over any suggestion.
  EntailOptions forced_options;
  forced_options.planner = stub;
  forced_options.engine = EngineKind::kBoundedWidth;
  PreparedQuery forced = MustPrepare(vocab, query, forced_options);
  EXPECT_EQ(forced.PlanChoiceSummary(), "default");
}

TEST(CostPlanPass, ExplainShowsCostPlanProvenance) {
  VocabularyPtr vocab = MonadicVocab();
  Query query = ChainQuery(vocab);
  auto stub = std::make_shared<StubPlanner>();
  stub->choice.engine = EngineKind::kBruteForce;
  stub->choice.detail = "stub oracle";
  EntailOptions options;
  options.planner = stub;
  PreparedQuery plan = MustPrepare(vocab, query, options);

  const std::string text = plan.Explain();
  EXPECT_NE(text.find("cost-plan"), std::string::npos);
  EXPECT_NE(text.find("stub oracle"), std::string::npos);
  EXPECT_NE(text.find("plan-choice: costed("), std::string::npos);
  EXPECT_NE(text.find("(costed route, where applicable)"),
            std::string::npos);
}

TEST(CostPlanPass, PlannerFingerprintRekeysThePlan) {
  VocabularyPtr vocab = MonadicVocab();
  Query query = ChainQuery(vocab);

  EntailOptions off;
  auto a = std::make_shared<StubPlanner>();
  a->fp = 1;
  auto b = std::make_shared<StubPlanner>();
  b->fp = 2;
  auto b_again = std::make_shared<StubPlanner>();
  b_again->fp = 2;
  EntailOptions with_a = off;
  with_a.planner = a;
  EntailOptions with_b = off;
  with_b.planner = b;
  EntailOptions with_b_again = off;
  with_b_again.planner = b_again;

  const uint64_t fp_off = FingerprintPlanInputs(query, off);
  const uint64_t fp_a = FingerprintPlanInputs(query, with_a);
  const uint64_t fp_b = FingerprintPlanInputs(query, with_b);
  EXPECT_NE(fp_off, fp_a);
  EXPECT_NE(fp_a, fp_b);
  // The planner object's identity does not matter, its fingerprint does.
  EXPECT_EQ(fp_b, FingerprintPlanInputs(query, with_b_again));
}

// --- the real cost model ---------------------------------------------------

// points order points in one strict chain c0 < c1 < ... ; Rare labels
// only c0, Common labels every point.
Database SkewedChain(VocabularyPtr vocab, int points) {
  Database db(vocab);
  for (int i = 0; i + 1 < points; ++i) {
    db.AddOrder("c" + std::to_string(i), OrderRel::kLt,
                "c" + std::to_string(i + 1));
  }
  EXPECT_TRUE(db.AddFact("Rare", {"c0"}).ok());
  for (int i = 0; i < points; ++i) {
    EXPECT_TRUE(db.AddFact("Common", {"c" + std::to_string(i)}).ok());
  }
  return db;
}

VocabularyPtr SkewedVocab() {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("Rare", {Sort::kOrder});
  vocab->MustAddPredicate("Common", {Sort::kOrder});
  return vocab;
}

TEST(CostModelTest, SchedulesSelectiveLabelFirst) {
  VocabularyPtr vocab = SkewedVocab();
  Database db = SkewedChain(vocab, 12);
  stats::CostModel model(stats::StatsFor(db));

  // exists t1 t2: Common(t1) & Rare(t2) — independent variables, so the
  // greedy schedule is free to pick the selective one first.
  Query query(vocab);
  query.AddDisjunct().Exists("t1").Exists("t2").Atom("Common", {"t1"}).Atom(
      "Rare", {"t2"});
  PreparedQuery prepared = MustPrepare(vocab, query);
  const NormConjunct& conjunct = prepared.disjuncts()[0].reduced;
  ASSERT_EQ(conjunct.num_order_vars(), 2);

  std::vector<int> sequence;
  const double cost = model.EstimateConjunct(conjunct, &sequence);
  ASSERT_EQ(sequence.size(), 2u);
  // The first scheduled variable is the one labeled Rare (1 candidate
  // point out of 12).
  int rare_pred = -1;
  for (int p = 0; p < vocab->num_predicates(); ++p) {
    if (vocab->predicate(p).name == "Rare") rare_pred = p;
  }
  ASSERT_GE(rare_pred, 0);
  const std::vector<int> first_labels =
      conjunct.labels[sequence[0]].Elements();
  ASSERT_EQ(first_labels.size(), 1u);
  EXPECT_EQ(first_labels[0], rare_pred);
  // Scheduling rare-first keeps the left-deep products small: 1 + 1*12,
  // versus 12 + 12*1 the other way.
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 12.0 + 12.0);
}

TEST(CostModelTest, OrdersDisjunctsCheapestFirst) {
  VocabularyPtr vocab = SkewedVocab();
  Database db = SkewedChain(vocab, 12);
  stats::CostModel model(stats::StatsFor(db));

  Query query(vocab);
  query.AddDisjunct().Exists("t").Atom("Common", {"t"});  // est 12
  query.AddDisjunct().Exists("t").Atom("Rare", {"t"});    // est 1
  PreparedQuery base = MustPrepare(vocab, query);
  std::vector<NormConjunct> disjuncts;
  for (const DisjunctPlan& entry : base.disjuncts()) {
    disjuncts.push_back(entry.reduced);
  }

  QueryPlanChoice choice = model.PlanQuery(disjuncts);
  ASSERT_EQ(choice.disjuncts.size(), 2u);
  EXPECT_GT(choice.disjuncts[0].est_cost, choice.disjuncts[1].est_cost);
  EXPECT_EQ(choice.disjunct_order, (std::vector<int>{1, 0}));
  EXPECT_NE(choice.detail.find("cost-model over stats"), std::string::npos);
}

TEST(CostModelTest, ChainDatabaseRoutesMultiDisjunctToBruteForce) {
  VocabularyPtr vocab = SkewedVocab();
  Database chain = SkewedChain(vocab, 8);
  stats::CostModel chain_model(stats::StatsFor(chain));

  Query query(vocab);
  query.AddDisjunct().Exists("t").Atom("Rare", {"t"});
  query.AddDisjunct().Exists("t").Atom("Common", {"t"});
  PreparedQuery prepared = MustPrepare(vocab, query);
  std::vector<NormConjunct> disjuncts;
  for (const DisjunctPlan& entry : prepared.disjuncts()) {
    disjuncts.push_back(entry.reduced);
  }

  // An all-strict total chain has exactly one minimal model: route the
  // disjunctive query to a single brute-force check.
  EXPECT_EQ(chain_model.PlanQuery(disjuncts).engine,
            EngineKind::kBruteForce);

  // One weak edge breaks the rule (points may merge), as does a second
  // component (points may interleave): no opinion.
  Database weak(vocab);
  weak.AddOrder("a", OrderRel::kLt, "b");
  weak.AddOrder("b", OrderRel::kLe, "c");
  EXPECT_TRUE(weak.AddFact("Rare", {"a"}).ok());
  stats::CostModel weak_model(stats::StatsFor(weak));
  EXPECT_EQ(weak_model.PlanQuery(disjuncts).engine, EngineKind::kAuto);

  Database split(vocab);
  split.AddOrder("a", OrderRel::kLt, "b");
  split.AddOrder("c", OrderRel::kLt, "d");
  EXPECT_TRUE(split.AddFact("Rare", {"a"}).ok());
  stats::CostModel split_model(stats::StatsFor(split));
  EXPECT_EQ(split_model.PlanQuery(disjuncts).engine, EngineKind::kAuto);

  // A single-disjunct query keeps the static route even on a chain.
  disjuncts.resize(1);
  EXPECT_EQ(chain_model.PlanQuery(disjuncts).engine, EngineKind::kAuto);
}

TEST(CostModelTest, CostingNeverChangesVerdicts) {
  VocabularyPtr vocab = SkewedVocab();
  Database db = SkewedChain(vocab, 10);

  std::vector<Query> queries;
  {
    Query q(vocab);  // entailed: every completion has a Common point
    q.AddDisjunct().Exists("t").Atom("Common", {"t"});
    queries.push_back(std::move(q));
  }
  {
    Query q(vocab);  // entailed via the Rare disjunct
    q.AddDisjunct().Exists("t").Atom("Rare", {"t"});
    q.AddDisjunct()
        .Exists("t1")
        .Exists("t2")
        .Atom("Common", {"t1"})
        .Order("t2", OrderRel::kLt, "t1")
        .Atom("Rare", {"t1"});
    queries.push_back(std::move(q));
  }
  {
    Query q(vocab);  // not entailed: nothing below the chain's bottom
    q.AddDisjunct()
        .Exists("t1")
        .Exists("t2")
        .Atom("Rare", {"t1"})
        .Order("t2", OrderRel::kLt, "t1");
    queries.push_back(std::move(q));
  }

  for (const Query& query : queries) {
    EntailOptions plain;
    Result<EntailResult> expect =
        MustPrepare(vocab, query, plain).Evaluate(db);
    ASSERT_TRUE(expect.ok());

    EntailOptions costed;
    costed.planner = stats::PlannerFor(db);
    Result<EntailResult> got =
        MustPrepare(vocab, query, costed).Evaluate(db);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().entailed, expect.value().entailed);
  }
}

}  // namespace
}  // namespace iodb
