// The point algebra (Section 1/7 reference problem) and Allen's interval
// relations (Section 1 motivation), cross-validated against the semantic
// ground truth (minimal-model enumeration).

#include <gtest/gtest.h>

#include "core/intervals.h"
#include "core/minimal_models.h"
#include "core/parser.h"
#include "core/point_algebra.h"
#include "util/random.h"

namespace iodb {
namespace {

Database Parse(const std::string& text) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(text, vocab);
  IODB_CHECK(db.ok());
  return std::move(db.value());
}

// Semantic reference: the relations realized across all minimal models.
PointRelation BruteRelation(const Database& db, const std::string& u,
                            const std::string& v) {
  Result<NormDb> norm = Normalize(db);
  PointRelation out;
  if (!norm.ok()) return out;  // inconsistent: nothing possible
  int pu = norm.value().point_of_constant[*db.FindConstant(u, Sort::kOrder)];
  int pv = norm.value().point_of_constant[*db.FindConstant(v, Sort::kOrder)];
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    int position_u = -1, position_v = -1;
    for (size_t i = 0; i < groups.size(); ++i) {
      for (int p : groups[i]) {
        if (p == pu) position_u = static_cast<int>(i);
        if (p == pv) position_v = static_cast<int>(i);
      }
    }
    if (position_u < position_v) out.can_lt = true;
    if (position_u == position_v) out.can_eq = true;
    if (position_u > position_v) out.can_gt = true;
    return true;
  };
  ForEachMinimalModel(norm.value(), visitor);
  return out;
}

TEST(PointAlgebraTest, BasicRelations) {
  Database db = Parse("a < b\nb <= c\nc != d\na <= d");
  auto rel = [&](const char* u, const char* v) {
    Result<PointRelation> r = RelationBetween(db, u, v);
    IODB_CHECK(r.ok());
    return std::string(r.value().Name());
  };
  EXPECT_EQ(rel("a", "b"), "<");
  EXPECT_EQ(rel("b", "a"), ">");
  EXPECT_EQ(rel("b", "c"), "<=");
  EXPECT_EQ(rel("a", "c"), "<");
  EXPECT_EQ(rel("c", "d"), "!=");
  EXPECT_EQ(rel("a", "d"), "<=");
  EXPECT_EQ(rel("b", "d"), "?");
}

TEST(PointAlgebraTest, DiamondWithInequalityNeedsProbes) {
  // u <= v <= w, u <= v' <= w, v != v': u < w is entailed even though no
  // path derives it (plain transitive closure misses this).
  Database db = Parse("u <= v\nv <= w\nu <= v'\nv' <= w\nv != v'");
  Result<PointRelation> r = RelationBetween(db, "u", "w");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().DefinitelyLt()) << r.value().Name();
}

TEST(PointAlgebraTest, SamePointEquality) {
  Database db = Parse("u <= v\nv <= u");
  Result<PointRelation> r = RelationBetween(db, "u", "v");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().DefinitelyEq());
  EXPECT_EQ(std::string(r.value().Name()), "=");
}

TEST(PointAlgebraTest, InconsistentDatabase) {
  Database db = Parse("u < v\nv < u\nu < w");
  EXPECT_FALSE(OrderConstraintsConsistent(db));
  Result<PointRelation> r = RelationBetween(db, "u", "w");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r.value().Name()), "inconsistent");
}

TEST(PointAlgebraTest, UnknownConstantRejected) {
  Database db = Parse("u < v");
  EXPECT_FALSE(RelationBetween(db, "u", "nope").ok());
}

class PointAlgebraRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PointAlgebraRandomTest, AgreesWithModelEnumeration) {
  Rng rng(GetParam() + 2100);
  int n = rng.UniformInt(2, 5);
  Database db = Parse("");  // start empty, add constraints by id
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    names.push_back("p" + std::to_string(i));
    db.GetOrAddConstant(names.back(), Sort::kOrder);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double roll = static_cast<double>(rng.Uniform(100)) / 100.0;
      if (roll < 0.25) {
        db.AddOrder(names[i], OrderRel::kLt, names[j]);
      } else if (roll < 0.45) {
        db.AddOrder(names[i], OrderRel::kLe, names[j]);
      } else if (roll < 0.55) {
        db.AddNotEqual(names[i], names[j]);
      }
    }
  }
  if (!OrderConstraintsConsistent(db)) return;  // acyclic by construction
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      Result<PointRelation> fast = RelationBetween(db, names[i], names[j]);
      ASSERT_TRUE(fast.ok());
      PointRelation brute = BruteRelation(db, names[i], names[j]);
      EXPECT_EQ(fast.value(), brute)
          << "seed " << GetParam() << " pair " << names[i] << "," << names[j]
          << " fast=" << fast.value().Name() << " brute=" << brute.Name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointAlgebraRandomTest,
                         ::testing::Range(0, 30));

TEST(IntervalsTest, NamesAndInverses) {
  for (AllenRelation r : AllAllenRelations()) {
    EXPECT_EQ(Inverse(Inverse(r)), r);
    EXPECT_STRNE(AllenRelationName(r), "unknown");
  }
  EXPECT_EQ(Inverse(AllenRelation::kEquals), AllenRelation::kEquals);
  EXPECT_EQ(AllAllenRelations().size(), 13u);
}

TEST(IntervalsTest, MeetsComposesToBefore) {
  // I meets J, J meets K => I before K.
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  Interval i{"i1", "i2"}, j{"j1", "j2"}, k{"k1", "k2"};
  for (const Interval* iv : {&i, &j, &k}) DeclareInterval(db, *iv);
  AddAllenConstraint(db, i, j, AllenRelation::kMeets);
  AddAllenConstraint(db, j, k, AllenRelation::kMeets);
  Result<bool> nec = NecessarilyHolds(db, i, k, AllenRelation::kBefore);
  ASSERT_TRUE(nec.ok());
  EXPECT_TRUE(nec.value());
  Result<bool> pos = PossiblyHolds(db, i, k, AllenRelation::kOverlaps);
  ASSERT_TRUE(pos.ok());
  EXPECT_FALSE(pos.value());
}

TEST(IntervalsTest, UnconstrainedIntervalsAdmitAllRelations) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  Interval i{"i1", "i2"}, j{"j1", "j2"};
  DeclareInterval(db, i);
  DeclareInterval(db, j);
  Result<std::vector<AllenRelation>> possible = PossibleRelations(db, i, j);
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(possible.value().size(), 13u);
}

TEST(IntervalsTest, OverlapConstraintNarrowsRelations) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  Interval i{"i1", "i2"}, j{"j1", "j2"};
  DeclareInterval(db, i);
  DeclareInterval(db, j);
  AddAllenConstraint(db, i, j, AllenRelation::kOverlaps);
  Result<std::vector<AllenRelation>> possible = PossibleRelations(db, i, j);
  ASSERT_TRUE(possible.ok());
  ASSERT_EQ(possible.value().size(), 1u);
  EXPECT_EQ(possible.value()[0], AllenRelation::kOverlaps);
  Result<bool> nec = NecessarilyHolds(db, i, j, AllenRelation::kOverlaps);
  ASSERT_TRUE(nec.ok());
  EXPECT_TRUE(nec.value());
  // The inverse holds from J's point of view.
  Result<bool> inv = NecessarilyHolds(db, j, i, AllenRelation::kOverlappedBy);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(inv.value());
}

TEST(IntervalsTest, SeriationScenario) {
  // Archeological seriation (Section 1 / Golumbic): artifacts co-present
  // in a grave have overlapping use intervals. Artifacts A and B share a
  // grave, B and C share one; A use ended before C started. Then B's
  // interval must genuinely straddle: B cannot be entirely before A...
  // and B-before-C and B-after-A are both impossible.
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  Interval a{"a1", "a2"}, b{"b1", "b2"}, c{"c1", "c2"};
  for (const Interval* iv : {&a, &b, &c}) DeclareInterval(db, *iv);
  // "Intervals overlap in some direction": encode the grave evidence as
  // shared points (the grave deposit time lies in both intervals).
  db.AddOrder("a1", OrderRel::kLt, "g_ab");
  db.AddOrder("g_ab", OrderRel::kLt, "a2");
  db.AddOrder("b1", OrderRel::kLt, "g_ab");
  db.AddOrder("g_ab", OrderRel::kLt, "b2");
  db.AddOrder("b1", OrderRel::kLt, "g_bc");
  db.AddOrder("g_bc", OrderRel::kLt, "b2");
  db.AddOrder("c1", OrderRel::kLt, "g_bc");
  db.AddOrder("g_bc", OrderRel::kLt, "c2");
  AddAllenConstraint(db, a, c, AllenRelation::kBefore);

  Result<bool> b_before_c = PossiblyHolds(db, b, c, AllenRelation::kBefore);
  ASSERT_TRUE(b_before_c.ok());
  EXPECT_FALSE(b_before_c.value());  // B shares a moment with C
  Result<bool> b_after_a = PossiblyHolds(db, b, a, AllenRelation::kAfter);
  ASSERT_TRUE(b_after_a.ok());
  EXPECT_FALSE(b_after_a.value());  // B shares a moment with A
  // B necessarily ends after A's interval started AND after C started?
  Result<PointRelation> span = RelationBetween(db, "a1", "b2");
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(span.value().DefinitelyLt());
}

}  // namespace
}  // namespace iodb
