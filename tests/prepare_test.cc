// The query-compilation pipeline (core/prepare.h): pass provenance,
// static engine classification, Explain() rendering, plan/legacy
// agreement across the full engine matrix, batch evaluation, and the
// normalization-cache interplay with Database mutation.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "core/engine.h"
#include "core/model_check.h"
#include "core/parser.h"
#include "core/prepare.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace iodb {
namespace {

std::optional<PassRecord> FindPass(const PreparedQuery& plan,
                                   QueryPassId id) {
  for (const PassRecord& record : plan.passes()) {
    if (record.id == id) return record;
  }
  return std::nullopt;
}

TEST(PrepareTest, PassProvenanceRecordsEveryPassInOrder) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("P(u)\nP(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  // Constants (u), an inequality, and a non-proper variable (w) under the
  // rational semantics exercise every pass.
  Result<Query> query = ParseQuery(
      "exists t1 t2 w: P(t1) & P(t2) & t1 != t2 & t1 < w & u <= t1", vocab);
  ASSERT_TRUE(query.ok());
  EntailOptions dense;
  dense.semantics = OrderSemantics::kRational;
  Result<PreparedQuery> plan = Prepare(vocab, query.value(), dense);
  ASSERT_TRUE(plan.ok());

  const std::vector<QueryPassId> expected_order = {
      QueryPassId::kConstantElimination, QueryPassId::kInequalityRewrite,
      QueryPassId::kNormalize,           QueryPassId::kSemanticsReduction,
      QueryPassId::kObjectSplit,         QueryPassId::kEngineClassification,
      QueryPassId::kCostPlan,
  };
  ASSERT_EQ(plan.value().passes().size(), expected_order.size());
  for (size_t i = 0; i < expected_order.size(); ++i) {
    EXPECT_EQ(plan.value().passes()[i].id, expected_order[i]) << "pass " << i;
    EXPECT_FALSE(plan.value().passes()[i].detail.empty()) << "pass " << i;
  }

  EXPECT_TRUE(FindPass(plan.value(), QueryPassId::kConstantElimination)
                  ->applied);
  ASSERT_EQ(plan.value().markers().size(), 1u);
  EXPECT_EQ(plan.value().markers()[0].constant, "u");
  // t1 != t2 doubles the disjunct.
  EXPECT_TRUE(FindPass(plan.value(), QueryPassId::kInequalityRewrite)
                  ->applied);
  EXPECT_EQ(plan.value().disjuncts().size(), 2u);
  // The marker atom @is_u(t) makes the rewritten disjuncts nontight, so
  // the rational reduction applies.
  EXPECT_TRUE(FindPass(plan.value(), QueryPassId::kSemanticsReduction)
                  ->applied);
}

TEST(PrepareTest, NoOpPassesAreRecordedAsNoOps) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("P(u)\nQ(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query =
      ParseQuery("exists t1 t2: P(t1) & t1 < t2 & Q(t2)", vocab);
  ASSERT_TRUE(query.ok());
  Result<PreparedQuery> plan = Prepare(vocab, query.value());
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(FindPass(plan.value(), QueryPassId::kConstantElimination)
                   ->applied);
  EXPECT_FALSE(FindPass(plan.value(), QueryPassId::kInequalityRewrite)
                   ->applied);
  EXPECT_FALSE(FindPass(plan.value(), QueryPassId::kSemanticsReduction)
                   ->applied);
  EXPECT_FALSE(FindPass(plan.value(), QueryPassId::kObjectSplit)->applied);
  EXPECT_TRUE(plan.value().markers().empty());
}

TEST(PrepareTest, EngineClassificationMonadicConjunctive) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("P(u)\nQ(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query =
      ParseQuery("exists t1 t2: P(t1) & t1 < t2 & Q(t2)", vocab);
  ASSERT_TRUE(query.ok());
  Result<PreparedQuery> plan = Prepare(vocab, query.value());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().planned_engine(), EngineKind::kBoundedWidth);
  ASSERT_EQ(plan.value().disjuncts().size(), 1u);
  const DisjunctPlan& entry = plan.value().disjuncts()[0];
  EXPECT_TRUE(entry.monadic_order_only);
  EXPECT_EQ(entry.order_vars, 2);
  EXPECT_EQ(entry.width, 1);
  EXPECT_EQ(entry.engine, EngineKind::kBoundedWidth);

  Result<EntailResult> result = plan.value().Evaluate(db.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().entailed);
  EXPECT_EQ(result.value().engine_used, EngineKind::kBoundedWidth);
}

TEST(PrepareTest, EngineClassificationDisjunctive) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db =
      ParseDatabase("pred P(order)\npred Q(order)\nP(u)\nQ(v)", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query = ParseQuery("exists t: P(t) | exists s: Q(s)", vocab);
  ASSERT_TRUE(query.ok());
  Result<PreparedQuery> plan = Prepare(vocab, query.value());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().planned_engine(), EngineKind::kDisjunctiveSearch);
  ASSERT_EQ(plan.value().disjuncts().size(), 2u);
  for (const DisjunctPlan& entry : plan.value().disjuncts()) {
    EXPECT_TRUE(entry.monadic_order_only);
    EXPECT_EQ(entry.engine, EngineKind::kBoundedWidth);  // conjunctive case
  }
  Result<EntailResult> result = plan.value().Evaluate(db.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().engine_used, EngineKind::kDisjunctiveSearch);
}

TEST(PrepareTest, EngineClassificationNary) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db =
      ParseDatabase("pred B(object, order)\nB(a, t1)\nt1 < t2", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query = ParseQuery("exists x s: B(x, s)", vocab);
  ASSERT_TRUE(query.ok());
  Result<PreparedQuery> plan = Prepare(vocab, query.value());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().planned_engine(), EngineKind::kBruteForce);
  ASSERT_EQ(plan.value().disjuncts().size(), 1u);
  EXPECT_FALSE(plan.value().disjuncts()[0].monadic_order_only);
  EXPECT_EQ(plan.value().disjuncts()[0].engine, EngineKind::kBruteForce);
  Result<EntailResult> result = plan.value().Evaluate(db.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().engine_used, EngineKind::kBruteForce);
}

TEST(PrepareTest, ObjectSplitRecordedStatically) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(R"(
    pred Person(object)
    pred P(order)
    Person(alice)
    P(u)
    u < v
  )",
                                      vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query = ParseQuery("exists x t: Person(x) & P(t)", vocab);
  ASSERT_TRUE(query.ok());
  Result<PreparedQuery> plan = Prepare(vocab, query.value());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(FindPass(plan.value(), QueryPassId::kObjectSplit)->applied);
  ASSERT_EQ(plan.value().disjuncts().size(), 1u);
  const DisjunctPlan& entry = plan.value().disjuncts()[0];
  ASSERT_TRUE(entry.object_part.has_value());
  EXPECT_EQ(entry.object_part->num_object_vars(), 1);
  // The stripped disjunct is monadic, so the fast engine applies even
  // though the surface query mentions an object atom.
  EXPECT_TRUE(entry.monadic_order_only);
  Result<EntailResult> result = plan.value().Evaluate(db.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().entailed);
  EXPECT_EQ(result.value().engine_used, EngineKind::kBoundedWidth);
}

TEST(PrepareTest, ExplainGoldenOutput) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("Q", {Sort::kOrder});
  Result<Query> query =
      ParseQuery("exists t1 t2: P(t1) & t1 < t2 & Q(t2)", vocab);
  ASSERT_TRUE(query.ok());
  Result<PreparedQuery> plan = Prepare(vocab, query.value());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().Explain(),
            "prepared query: 1 disjunct(s), semantics=finite, engine=auto\n"
            "passes:\n"
            "  constant-elimination  no-op    no constants\n"
            "  inequality-rewrite    no-op    no query inequalities\n"
            "  normalize             applied  kept 1 of 1 disjunct(s)\n"
            "  semantics-reduction   no-op    finite semantics\n"
            "  object-split          no-op    no object-only components\n"
            "  engine-classification applied  planned engine: bounded-width\n"
            "  cost-plan             no-op    no planner (costing off)\n"
            "disjuncts:\n"
            "  #0 monadic=yes order-vars=2 width=1 engine=bounded-width\n"
            "dispatch: bounded-width (database-dependent filtering may "
            "adjust)\n"
            "plan-choice: default\n");
}

// The heart of the acceptance criteria: Prepare+Evaluate must agree with
// the legacy one-shot facade on verdict AND engine choice, for every
// engine forcing, on random monadic instances — including error cases
// (unsupported forcings surface identically).
TEST(PrepareTest, EvaluateAgreesWithEntailsAcrossEngineMatrix) {
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(seed + 52000);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 3;
    Database db = RandomMonadicDb(params, vocab, rng);
    Query query = rng.Bernoulli(0.5)
                      ? RandomConjunctiveMonadicQuery(3, 3, 0.4, 0.4, 0.3,
                                                      vocab, rng)
                      : RandomDisjunctiveSequentialQuery(2, 3, 3, 0.3, 0.3,
                                                        vocab, rng);
    for (EngineKind kind :
         {EngineKind::kAuto, EngineKind::kBruteForce,
          EngineKind::kPathDecomposition, EngineKind::kBoundedWidth,
          EngineKind::kDisjunctiveSearch}) {
      EntailOptions options;
      options.engine = kind;
      options.want_countermodel = true;
      Result<EntailResult> legacy = Entails(db, query, options);
      Result<PreparedQuery> plan = Prepare(vocab, query, options);
      ASSERT_TRUE(plan.ok()) << "seed " << seed;
      Result<EntailResult> prepared = plan.value().Evaluate(db);
      ASSERT_EQ(prepared.ok(), legacy.ok())
          << "seed " << seed << " engine " << EngineKindName(kind);
      if (!legacy.ok()) {
        EXPECT_EQ(prepared.status().code(), legacy.status().code());
        continue;
      }
      EXPECT_EQ(prepared.value().entailed, legacy.value().entailed)
          << "seed " << seed << " engine " << EngineKindName(kind);
      EXPECT_EQ(prepared.value().engine_used, legacy.value().engine_used)
          << "seed " << seed << " engine " << EngineKindName(kind);
      EXPECT_EQ(prepared.value().countermodel.has_value(),
                legacy.value().countermodel.has_value());
    }
  }
}

TEST(PrepareTest, SemanticsVariantsAgreeWithEntails) {
  EspionageScenario scenario = MakeEspionageScenario();
  for (OrderSemantics semantics :
       {OrderSemantics::kFinite, OrderSemantics::kInteger,
        OrderSemantics::kRational}) {
    EntailOptions options;
    options.semantics = semantics;
    for (const Query* query :
         {&scenario.integrity, &scenario.twice_a, &scenario.twice_either,
          &scenario.twice_someone}) {
      Result<EntailResult> legacy = Entails(scenario.db, *query, options);
      ASSERT_TRUE(legacy.ok());
      Result<PreparedQuery> plan = Prepare(scenario.vocab, *query, options);
      ASSERT_TRUE(plan.ok());
      Result<EntailResult> prepared = plan.value().Evaluate(scenario.db);
      ASSERT_TRUE(prepared.ok());
      EXPECT_EQ(prepared.value().entailed, legacy.value().entailed)
          << OrderSemanticsName(semantics);
      EXPECT_EQ(prepared.value().engine_used, legacy.value().engine_used);
    }
  }
}

TEST(PrepareTest, ScenarioPlansReproduceTheExpectedVerdicts) {
  EspionageScenario scenario = MakeEspionageScenario();
  EspionagePlans plans = PrepareEspionagePlans(scenario);
  auto entailed = [&](const PreparedQuery& plan) {
    Result<EntailResult> result = plan.Evaluate(scenario.db);
    IODB_CHECK(result.ok());
    return result.value().entailed;
  };
  EXPECT_FALSE(entailed(plans.integrity));
  EXPECT_FALSE(entailed(plans.twice_a));
  EXPECT_FALSE(entailed(plans.twice_b));
  EXPECT_TRUE(entailed(plans.twice_either));
  EXPECT_TRUE(entailed(plans.twice_someone));
}

TEST(PrepareTest, EvaluateBatchMatchesIndividualEvaluates) {
  auto vocab = std::make_shared<Vocabulary>();
  std::vector<SchedulingScenario> fleet;
  for (int i = 0; i < 6; ++i) {
    Rng rng(300 + i);
    fleet.push_back(MakeSchedulingScenario(2, 3, rng, vocab));
  }
  PreparedQuery plan = PrepareForbiddenPlan(fleet[0]);
  std::vector<const Database*> dbs;
  for (const SchedulingScenario& scenario : fleet) dbs.push_back(&scenario.db);
  std::vector<Result<EntailResult>> batch = plan.EvaluateBatch(dbs);
  ASSERT_EQ(batch.size(), fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    Result<EntailResult> single = plan.Evaluate(fleet[i].db);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch[i].value().entailed, single.value().entailed) << i;
    EXPECT_EQ(batch[i].value().engine_used, single.value().engine_used) << i;
  }
}

TEST(PrepareTest, EnumerateCountermodelsMatchesFacade) {
  Rng rng(17);
  SchedulingScenario scenario = MakeSchedulingScenario(2, 3, rng);
  PreparedQuery plan = PrepareForbiddenPlan(scenario);
  std::set<std::string> via_plan;
  Result<long long> from_plan = plan.EnumerateCountermodels(
      scenario.db, [&](const FiniteModel& model) {
        via_plan.insert(model.ToString());
        return true;
      });
  ASSERT_TRUE(from_plan.ok());
  std::set<std::string> via_facade;
  Result<long long> from_facade = EnumerateCountermodels(
      scenario.db, scenario.forbidden, [&](const FiniteModel& model) {
        via_facade.insert(model.ToString());
        return true;
      });
  ASSERT_TRUE(from_facade.ok());
  EXPECT_EQ(from_plan.value(), from_facade.value());
  EXPECT_EQ(via_plan, via_facade);
  EXPECT_FALSE(via_plan.empty());
}

TEST(PrepareTest, VocabularyMismatchIsAnError) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Result<Query> query = ParseQuery("exists t: P(t)", vocab);
  ASSERT_TRUE(query.ok());
  PreparedQuery plan = MustPrepare(vocab, query.value());
  // A content-identical but distinct vocabulary is still a misuse:
  // predicate ids are only comparable within one interning table.
  auto other_vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("P(u)", other_vocab);
  ASSERT_TRUE(db.ok());
  Result<EntailResult> result = plan.Evaluate(db.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrepareTest, InconsistentDatabaseSurfacesAtEvaluate) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("u < v\nv < u", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query = ParseQuery("exists t1 t2: t1 < t2", vocab);
  ASSERT_TRUE(query.ok());
  // Compilation is database-independent and succeeds...
  Result<PreparedQuery> plan = Prepare(vocab, query.value());
  ASSERT_TRUE(plan.ok());
  // ...the inconsistency is an evaluation-time error.
  Result<EntailResult> result = plan.value().Evaluate(db.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInconsistent);
}

// --- Normalization caching through the prepared pipeline -------------------

TEST(PrepareTest, RepeatedEvaluateReusesTheNormView) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> parsed = ParseDatabase("P(u)\nQ(v)\nu < v", vocab);
  ASSERT_TRUE(parsed.ok());
  Database db = std::move(parsed.value());
  Result<Query> query =
      ParseQuery("exists t1 t2: P(t1) & t1 < t2 & Q(t2)", vocab);
  ASSERT_TRUE(query.ok());
  PreparedQuery plan = MustPrepare(vocab, query.value());

  ASSERT_TRUE(plan.Evaluate(db).ok());
  EXPECT_EQ(db.norm_view_computations(), 1);
  ASSERT_TRUE(plan.Evaluate(db).ok());
  ASSERT_TRUE(plan.Evaluate(db).ok());
  EXPECT_EQ(db.norm_view_computations(), 1);  // memoized across evaluations
}

TEST(PrepareTest, MutationInvalidatesTheCachedNormalization) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("Q", {Sort::kOrder});
  Database db(vocab);
  ASSERT_TRUE(db.AddFact("P", {"u"}).ok());
  Result<Query> query =
      ParseQuery("exists t1 t2: P(t1) & t1 < t2 & Q(t2)", vocab);
  ASSERT_TRUE(query.ok());
  PreparedQuery plan = MustPrepare(vocab, query.value());

  Result<EntailResult> before = plan.Evaluate(db);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.value().entailed);
  EXPECT_EQ(db.norm_view_computations(), 1);

  // AddProperAtom (via AddFact) and AddOrderAtom (via AddOrder) both
  // invalidate; the next evaluation sees the new facts and flips.
  db.AddOrder("u", OrderRel::kLt, "v");
  ASSERT_TRUE(db.AddFact("Q", {"v"}).ok());
  Result<EntailResult> after = plan.Evaluate(db);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().entailed);
  EXPECT_EQ(db.norm_view_computations(), 2);
}

TEST(PrepareTest, TransformedPlansCachePerDatabaseRevision) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> parsed = ParseDatabase("P(u)\nQ(v)\nu < v", vocab);
  ASSERT_TRUE(parsed.ok());
  Database db = std::move(parsed.value());
  // The constant u forces marker-fact injection at evaluation time.
  Result<Query> query = ParseQuery("exists t: u < t & Q(t)", vocab);
  ASSERT_TRUE(query.ok());
  PreparedQuery plan = MustPrepare(vocab, query.value());
  ASSERT_FALSE(plan.markers().empty());

  Result<EntailResult> first = plan.Evaluate(db);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().entailed);
  // The transformed normalization is cached per (uid, revision): repeat
  // evaluations do not touch the database's own view counter.
  EXPECT_EQ(db.norm_view_computations(), 0);
  ASSERT_TRUE(plan.Evaluate(db).ok());

  // Mutating the database invalidates the per-plan cache too: retract
  // nothing, but extend the order so the verdict flips for a new query
  // shape — here simply verify the evaluation tracks fresh facts.
  Result<Query> after_v = ParseQuery("exists t: v < t & P(t)", vocab);
  ASSERT_TRUE(after_v.ok());
  PreparedQuery plan2 = MustPrepare(vocab, after_v.value());
  Result<EntailResult> before_mutation = plan2.Evaluate(db);
  ASSERT_TRUE(before_mutation.ok());
  EXPECT_FALSE(before_mutation.value().entailed);
  db.AddOrder("v", OrderRel::kLt, "w");
  ASSERT_TRUE(db.AddFact("P", {"w"}).ok());
  Result<EntailResult> after_mutation = plan2.Evaluate(db);
  ASSERT_TRUE(after_mutation.ok());
  EXPECT_TRUE(after_mutation.value().entailed);
}

}  // namespace
}  // namespace iodb
