// Print -> Parse -> Print round-trip property tests over the generator
// families (parser_test.cc covers hand-written strings; this closes the
// gap for machine-produced ones — the conformance fuzzer and the serving
// tools ship queries as printed text, so the printed form must be a
// fixed point of the parser).

#include <gtest/gtest.h>

#include <string>

#include "core/parser.h"
#include "core/printer.h"
#include "core/query.h"
#include "util/random.h"
#include "workload/generators.h"

namespace iodb {
namespace {

// Asserts that the printed form of `query` parses and reprints to the
// same text, and that the reparsed query is structurally identical
// (equal fingerprints).
void ExpectQueryRoundTrip(const Query& query, const VocabularyPtr& vocab,
                          uint64_t seed) {
  const std::string printed = ToString(query);
  Result<Query> reparsed = ParseQuery(printed, vocab);
  ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": '" << printed
                             << "' does not parse: "
                             << reparsed.status().ToString();
  EXPECT_EQ(ToString(reparsed.value()), printed) << "seed " << seed;
  EXPECT_EQ(FingerprintQuery(reparsed.value()), FingerprintQuery(query))
      << "seed " << seed << ": '" << printed << "'";
}

TEST(PrinterRoundTripTest, ConjunctiveMonadicFamily) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    auto vocab = std::make_shared<Vocabulary>();
    Query query = RandomConjunctiveMonadicQuery(
        rng.UniformInt(1, 5), 3, /*edge_probability=*/0.4,
        /*label_probability=*/0.4, /*le_probability=*/0.3, vocab, rng);
    ExpectQueryRoundTrip(query, vocab, seed);
  }
}

TEST(PrinterRoundTripTest, SequentialFamily) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    auto vocab = std::make_shared<Vocabulary>();
    Query query = RandomSequentialQuery(rng.UniformInt(1, 6), 3,
                                        /*label_probability=*/0.4,
                                        /*le_probability=*/0.3, vocab, rng);
    ExpectQueryRoundTrip(query, vocab, seed);
  }
}

TEST(PrinterRoundTripTest, DisjunctiveSequentialFamily) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    auto vocab = std::make_shared<Vocabulary>();
    Query query = RandomDisjunctiveSequentialQuery(
        rng.UniformInt(1, 4), rng.UniformInt(1, 4), 3,
        /*label_probability=*/0.4, /*le_probability=*/0.3, vocab, rng);
    ExpectQueryRoundTrip(query, vocab, seed);
  }
}

// The degenerate case the conformance fuzzer first caught: a conjunct
// that quantifies variables but draws no labels and no edges prints as
// "exists t0 t1: true", which must parse back to the same query.
TEST(PrinterRoundTripTest, AtomlessConjunctPrintsAsTrue) {
  auto vocab = std::make_shared<Vocabulary>();
  Query query(vocab);
  query.AddDisjunct().Exists("t0").Exists("t1");
  EXPECT_EQ(ToString(query), "exists t0 t1: true");
  ExpectQueryRoundTrip(query, vocab, 0);

  // Entirely empty disjunct: the empty conjunction itself.
  Query empty(vocab);
  empty.AddDisjunct();
  EXPECT_EQ(ToString(empty), "true");
  ExpectQueryRoundTrip(empty, vocab, 1);
}

// Constants survive too: a name not listed after `exists` stays a
// constant through the round trip.
TEST(PrinterRoundTripTest, ConstantsRoundTrip) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Result<Query> query =
      ParseQuery("exists t: P(t) & t < deadline | P(deadline)", vocab);
  ASSERT_TRUE(query.ok());
  ExpectQueryRoundTrip(query.value(), vocab, 0);
}

// Databases round-trip as well: the serving tools and fuzz repros ship
// them as printed text.
TEST(PrinterRoundTripTest, GeneratedDatabases) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = rng.UniformInt(1, 3);
    // Length >= 2 keeps every constant in an order chain, so the parser
    // re-infers the order sort without declarations.
    params.chain_length = rng.UniformInt(2, 5);
    Database db = RandomMonadicDb(params, vocab, rng);
    const std::string printed = ToString(db);
    Result<Database> reparsed = ParseDatabase(printed, vocab);
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": "
                               << reparsed.status().ToString();
    EXPECT_EQ(ToString(reparsed.value()), printed) << "seed " << seed;
  }
}

}  // namespace
}  // namespace iodb
