// Cross-cutting property tests: combinatorial identities, agreement
// between independent implementations, and budget/limit behavior.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/flexiword.h"
#include "core/inequality.h"
#include "core/minimal_models.h"
#include "core/model_check.h"
#include "core/parser.h"
#include "core/wqo.h"
#include "workload/generators.h"

namespace iodb {
namespace {

// Delannoy numbers: the minimal models of two disjoint strict chains of
// lengths m and n are the D(m, n) lattice paths with diagonal steps.
long long Delannoy(int m, int n) {
  std::vector<std::vector<long long>> d(m + 1,
                                        std::vector<long long>(n + 1, 1));
  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= n; ++j) {
      d[i][j] = d[i - 1][j] + d[i][j - 1] + d[i - 1][j - 1];
    }
  }
  return d[m][n];
}

class DelannoyTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DelannoyTest, TwoChainModelCountMatches) {
  auto [m, n] = GetParam();
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  for (int i = 0; i + 1 < m; ++i) {
    db.AddOrder("a" + std::to_string(i), OrderRel::kLt,
                "a" + std::to_string(i + 1));
  }
  if (m == 1) db.GetOrAddConstant("a0", Sort::kOrder);
  for (int i = 0; i + 1 < n; ++i) {
    db.AddOrder("b" + std::to_string(i), OrderRel::kLt,
                "b" + std::to_string(i + 1));
  }
  if (n == 1) db.GetOrAddConstant("b0", Sort::kOrder);
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(CountMinimalModels(norm.value()), Delannoy(m, n));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DelannoyTest,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 3}, std::pair{2, 2},
                      std::pair{3, 2}, std::pair{3, 3}, std::pair{4, 4}));

TEST(WordSatisfiesVsModelCheckTest, AgreeOnRandomInstances) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    // A random word model and a random sequential pattern.
    FlexiWord model_word = RandomWord(rng.UniformInt(1, 6), 3, 0.4, rng);
    int len = rng.UniformInt(1, 4);
    FlexiWord pattern;
    for (int i = 0; i < len; ++i) {
      PredSet s;
      for (int p = 0; p < 3; ++p) {
        if (rng.Bernoulli(0.3)) s.Add(p);
      }
      pattern.symbols.push_back(s);
      if (i > 0) {
        pattern.rels.push_back(rng.Bernoulli(0.5) ? OrderRel::kLt
                                                  : OrderRel::kLe);
      }
    }
    // Route 1: greedy word matching.
    bool greedy = WordSatisfies(model_word, pattern);
    // Route 2: generic model checking.
    FiniteModel model;
    auto vocab = std::make_shared<Vocabulary>();
    DeclareMonadicPredicates(*vocab, 3);
    model.vocab = vocab;
    model.num_points = model_word.size();
    model.point_labels = model_word.symbols;
    NormConjunct conjunct = ConjunctOfFlexiWord(pattern, 3);
    EXPECT_EQ(greedy, Satisfies(model, conjunct)) << "trial " << trial;
  }
}

TEST(RewriteInequalitiesTest, BudgetEnforced) {
  auto vocab = std::make_shared<Vocabulary>();
  DeclareMonadicPredicates(*vocab, 1);
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  for (int i = 0; i < 8; ++i) {
    c.Exists("t" + std::to_string(i));
    c.Atom("P0", {"t" + std::to_string(i)});
  }
  for (int i = 0; i < 7; ++i) {
    c.NotEqual("t" + std::to_string(i), "t" + std::to_string(i + 1));
  }
  Result<Query> full = RewriteInequalities(query, 1 << 10);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().disjuncts().size(), 128u);  // 2^7
  Result<Query> capped = RewriteInequalities(query, 64);
  EXPECT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
}

TEST(RewriteInequalitiesTest, PreservesSemantics) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(seed + 9100);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 2;
    Database db = RandomMonadicDb(params, vocab, rng);
    Query query =
        RandomConjunctiveMonadicQuery(3, 2, 0.3, 0.4, 0.3, vocab, rng);
    // Inject an inequality between the first two variables.
    query = [&] {
      Query q(vocab);
      QueryConjunct c = query.disjuncts()[0];
      if (c.variables.size() >= 2) c.NotEqual(c.variables[0], c.variables[1]);
      q.AddDisjunct(std::move(c));
      return q;
    }();
    // Native (brute force handles "!=" in conjuncts directly).
    EntailOptions native;
    native.engine = EngineKind::kBruteForce;
    native.max_rewritten_disjuncts = 0;  // forbid rewriting
    Result<EntailResult> direct = Entails(db, query, native);
    ASSERT_TRUE(direct.ok());
    // Rewritten (monadic engines after expansion).
    Result<EntailResult> rewritten = Entails(db, query);
    ASSERT_TRUE(rewritten.ok());
    EXPECT_EQ(direct.value().entailed, rewritten.value().entailed)
        << "seed " << seed;
  }
}

TEST(SemanticsEnginesTest, TransformedInstancesStayEngineAgnostic) {
  // Z/Q reductions feed the same engines; all engines agree after the
  // transforms on random (possibly nontight) monadic instances.
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(seed + 9500);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 2;
    Database db = RandomMonadicDb(params, vocab, rng);
    Query query =
        RandomConjunctiveMonadicQuery(3, 2, 0.5, 0.3, 0.3, vocab, rng);
    for (OrderSemantics semantics :
         {OrderSemantics::kInteger, OrderSemantics::kRational}) {
      std::optional<bool> reference;
      for (EngineKind engine :
           {EngineKind::kBruteForce, EngineKind::kAuto}) {
        EntailOptions options;
        options.semantics = semantics;
        options.engine = engine;
        Result<EntailResult> result = Entails(db, query, options);
        ASSERT_TRUE(result.ok());
        if (!reference.has_value()) {
          reference = result.value().entailed;
        } else {
          EXPECT_EQ(result.value().entailed, *reference)
              << "seed " << seed << " semantics "
              << OrderSemanticsName(semantics);
        }
      }
    }
  }
}

TEST(WqoBasisPropertyTest, BasisEvaluationMatchesEngineOnWordDbs) {
  // For word-shaped databases, D |= Φ iff the pattern of some basis word
  // embeds; cross-check CompiledQuery against FlexiEntails-based checks.
  Rng rng(9700);
  auto vocab = std::make_shared<Vocabulary>();
  DeclareMonadicPredicates(*vocab, 3);
  for (int trial = 0; trial < 40; ++trial) {
    Query query =
        RandomConjunctiveMonadicQuery(3, 3, 0.5, 0.4, 0.3, vocab, rng);
    Result<NormQuery> nq = NormalizeQuery(query);
    ASSERT_TRUE(nq.ok());
    CompiledQuery compiled =
        CompiledQuery::CompileConjunctive(nq.value().disjuncts[0]);
    FlexiWord word = RandomWord(rng.UniformInt(1, 6), 3, 0.5, rng);
    Database db = DbOfFlexiWord(word, vocab);
    Result<NormDb> norm = Normalize(db);
    ASSERT_TRUE(norm.ok());
    bool via_paths = true;
    for (const std::vector<FlexiWord>& paths : {compiled.basis()[0]}) {
      for (const FlexiWord& p : paths) {
        if (!FlexiEntails(word, p)) via_paths = false;
      }
    }
    EXPECT_EQ(compiled.Entails(norm.value()), via_paths) << "trial " << trial;
  }
}

}  // namespace
}  // namespace iodb
