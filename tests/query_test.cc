#include <gtest/gtest.h>

#include "core/printer.h"
#include "core/query.h"

namespace iodb {
namespace {

VocabularyPtr MonadicVocab() {
  auto vocab = std::make_shared<Vocabulary>();
  for (const char* name : {"P", "Q", "R", "S"}) {
    vocab->MustAddPredicate(name, {Sort::kOrder});
  }
  return vocab;
}

// The Figure 5 query: ∃t1..t4 [P(t1) Q(t1) P(t2) R(t3) S(t4) ∧
// t1<t2<t3 ∧ t2<=t4].
Query Fig5Query(VocabularyPtr vocab) {
  Query query(std::move(vocab));
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("t1").Exists("t2").Exists("t3").Exists("t4");
  c.Atom("P", {"t1"}).Atom("Q", {"t1"}).Atom("P", {"t2"});
  c.Atom("R", {"t3"}).Atom("S", {"t4"});
  c.Order("t1", OrderRel::kLt, "t2");
  c.Order("t2", OrderRel::kLt, "t3");
  c.Order("t2", OrderRel::kLe, "t4");
  return query;
}

TEST(QueryTest, BuilderAndConstants) {
  auto vocab = MonadicVocab();
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("t");
  c.Atom("P", {"t"});
  EXPECT_FALSE(query.HasConstants());
  QueryConjunct& d = query.AddDisjunct();
  d.Atom("P", {"u0"});  // u0 not declared: a constant
  EXPECT_TRUE(query.HasConstants());
}

TEST(NormalizeQueryTest, Fig5Structure) {
  Result<NormQuery> norm = NormalizeQuery(Fig5Query(MonadicVocab()));
  ASSERT_TRUE(norm.ok());
  ASSERT_EQ(norm.value().disjuncts.size(), 1u);
  const NormConjunct& c = norm.value().disjuncts[0];
  EXPECT_EQ(c.num_order_vars(), 4);
  EXPECT_EQ(c.dag.num_edges(), 3);
  EXPECT_EQ(c.Width(), 2);
  EXPECT_FALSE(c.IsSequential());
  EXPECT_TRUE(c.IsMonadicOrderOnly());
  EXPECT_TRUE(c.IsTight());
  EXPECT_TRUE(norm.value().IsConjunctive());
}

TEST(NormalizeQueryTest, SortInference) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("B", {Sort::kObject, Sort::kOrder});
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("x").Exists("t").Exists("s");
  c.Atom("B", {"x", "t"});
  c.Order("t", OrderRel::kLt, "s");
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  const NormConjunct& nc = norm.value().disjuncts[0];
  EXPECT_EQ(nc.num_object_vars(), 1);
  EXPECT_EQ(nc.num_order_vars(), 2);
  EXPECT_FALSE(nc.IsMonadicOrderOnly());
  EXPECT_FALSE(nc.IsTight());  // s occurs in no proper atom
}

TEST(NormalizeQueryTest, ConflictingSortsRejected) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("Obj", {Sort::kObject});
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("x");
  c.Atom("Obj", {"x"});
  c.Order("x", OrderRel::kLt, "x");  // x also used as order-sort
  EXPECT_FALSE(NormalizeQuery(query).ok());
}

TEST(NormalizeQueryTest, UnknownPredicateRejected) {
  Query query(std::make_shared<Vocabulary>());
  query.AddDisjunct().Exists("t").Atom("Nope", {"t"});
  EXPECT_FALSE(NormalizeQuery(query).ok());
}

TEST(NormalizeQueryTest, ConstantsRejected) {
  Query query(MonadicVocab());
  query.AddDisjunct().Atom("P", {"c"});  // c undeclared: a constant
  EXPECT_FALSE(NormalizeQuery(query).ok());
}

TEST(NormalizeQueryTest, InconsistentDisjunctDropped) {
  auto vocab = MonadicVocab();
  Query query(vocab);
  QueryConjunct& bad = query.AddDisjunct();
  bad.Exists("t").Exists("s");
  bad.Order("t", OrderRel::kLt, "s");
  bad.Order("s", OrderRel::kLe, "t");
  QueryConjunct& good = query.AddDisjunct();
  good.Exists("t").Atom("P", {"t"});
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm.value().disjuncts.size(), 1u);
  EXPECT_FALSE(norm.value().trivially_true);
}

TEST(NormalizeQueryTest, VariableMergingUnionsLabels) {
  auto vocab = MonadicVocab();
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("t").Exists("s");
  c.Atom("P", {"t"}).Atom("Q", {"s"});
  c.Order("t", OrderRel::kLe, "s");
  c.Order("s", OrderRel::kLe, "t");
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  const NormConjunct& nc = norm.value().disjuncts[0];
  EXPECT_EQ(nc.num_order_vars(), 1);
  EXPECT_EQ(nc.labels[0].Count(), 2);
  EXPECT_TRUE(nc.IsSequential());
}

TEST(NormalizeQueryTest, SelfInequalityInconsistent) {
  auto vocab = MonadicVocab();
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("t").Exists("s");
  c.Order("t", OrderRel::kLe, "s");
  c.Order("s", OrderRel::kLe, "t");
  c.NotEqual("t", "s");  // t = s forced: contradiction
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  EXPECT_TRUE(norm.value().disjuncts.empty());
}

TEST(NormalizeQueryTest, EmptyConjunctTriviallyTrue) {
  Query query(MonadicVocab());
  query.AddDisjunct();  // no atoms, no variables
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  EXPECT_TRUE(norm.value().trivially_true);
}

TEST(FullClosureTest, AddsDerivedAtoms) {
  // The Section 2 example: u <= v, v <= w, derived u <= w; with v < w the
  // derived edge is u < w.
  auto vocab = MonadicVocab();
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("u").Exists("v").Exists("w");
  c.Atom("P", {"u"}).Atom("P", {"v"}).Atom("P", {"w"});
  c.Order("u", OrderRel::kLe, "v");
  c.Order("v", OrderRel::kLt, "w");
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  NormConjunct full = FullClosure(norm.value().disjuncts[0]);
  EXPECT_EQ(full.dag.num_edges(), 3);
  bool found_uw = false;
  for (const LabeledEdge& e : full.dag.edges()) {
    if (full.order_var_names[e.from] == "u" &&
        full.order_var_names[e.to] == "w") {
      found_uw = true;
      EXPECT_EQ(e.rel, OrderRel::kLt);
    }
  }
  EXPECT_TRUE(found_uw);
}

TEST(DropNonProperVarsTest, Lemma25Example) {
  // Section 2's example: ∃u v w [P(u,w)-like monadic variant]:
  // P(u), P(w), u <= v, v <= w, u <= w (full); dropping v leaves
  // ∃u w [P(u) ∧ P(w) ∧ u <= w].
  auto vocab = MonadicVocab();
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("u").Exists("v").Exists("w");
  c.Atom("P", {"u"}).Atom("P", {"w"});
  c.Order("u", OrderRel::kLe, "v");
  c.Order("v", OrderRel::kLe, "w");
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  NormConjunct full = FullClosure(norm.value().disjuncts[0]);
  NormConjunct dropped = DropNonProperVars(full);
  EXPECT_EQ(dropped.num_order_vars(), 2);
  ASSERT_EQ(dropped.dag.num_edges(), 1);
  EXPECT_EQ(dropped.dag.edges()[0].rel, OrderRel::kLe);
  EXPECT_TRUE(dropped.IsTight());
}

TEST(EliminateConstantsTest, MarkerConstruction) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Database db(vocab);
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("t");
  c.Atom("P", {"t"});
  c.Order("u", OrderRel::kLt, "t");  // u is a database constant

  Result<ConstantFreePair> pair = EliminateConstants(db, query);
  ASSERT_TRUE(pair.ok());
  EXPECT_FALSE(pair.value().query.HasConstants());
  // The marker fact @is_u(u) was added to the database copy.
  bool found = false;
  for (const ProperAtom& atom : pair.value().db.proper_atoms()) {
    if (pair.value().db.vocab()->predicate(atom.pred).name == "@is_u") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  Result<NormQuery> norm = NormalizeQuery(pair.value().query);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm.value().disjuncts[0].num_order_vars(), 2);
}

TEST(NormQueryTest, MaxOrderVars) {
  auto vocab = MonadicVocab();
  Query query(vocab);
  query.AddDisjunct().Exists("t").Atom("P", {"t"});
  QueryConjunct& big = query.AddDisjunct();
  big.Exists("a").Exists("b").Exists("c");
  big.Atom("P", {"a"}).Atom("P", {"b"}).Atom("P", {"c"});
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm.value().MaxOrderVars(), 3);
  EXPECT_FALSE(norm.value().IsConjunctive());
}

TEST(PrinterTest, NormQueryRendering) {
  Result<NormQuery> norm = NormalizeQuery(Fig5Query(MonadicVocab()));
  ASSERT_TRUE(norm.ok());
  std::string text = ToString(norm.value());
  EXPECT_NE(text.find("P(t1)"), std::string::npos);
  EXPECT_NE(text.find("t1<t2"), std::string::npos);
}

}  // namespace
}  // namespace iodb
