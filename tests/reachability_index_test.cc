// Differential property suite for ReachabilityIndex: on fuzzer-style
// random precedence dags, every probe must agree with the closure-based
// Reachability oracle — including under randomized append / checkpoint /
// rewind sequences (a LIFO rewind must restore exact answers) and under
// concurrent read-only probing (the TSan job runs this binary).

#include "graph/reachability_index.h"

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/topo.h"

namespace iodb {
namespace {

// A random dag: edges only point from lower to higher vertex index.
Digraph RandomDag(std::mt19937& rng, int n, double edges_per_vertex) {
  Digraph dag(n);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> rel(0, 1);
  if (n < 2) return dag;
  const double p =
      std::min(1.0, edges_per_vertex / std::max(1.0, (n - 1) / 2.0));
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (coin(rng) < p) {
        dag.AddEdge(u, v, rel(rng) == 0 ? OrderRel::kLt : OrderRel::kLe);
      }
    }
  }
  return dag;
}

void ExpectAgreesWithClosure(const ReachabilityIndex& index,
                             const Digraph& dag) {
  const Reachability closure = ComputeReachability(dag);
  const int n = dag.num_vertices();
  ASSERT_EQ(index.num_vertices(), n);
  ReachProbeStats stats;
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(index.Reaches(u, v, &stats), closure.reach.Get(u, v))
          << "reach " << u << " -> " << v;
      EXPECT_EQ(index.StrictlyReaches(u, v, &stats),
                closure.strict.Get(u, v))
          << "strict " << u << " -> " << v;
      EXPECT_EQ(index.Comparable(u, v, &stats),
                closure.reach.Get(u, v) || closure.reach.Get(v, u))
          << "comparable " << u << " <> " << v;
    }
  }
  EXPECT_EQ(stats.probes, 3LL * n * n);
  EXPECT_EQ(stats.fast_hits + stats.fallbacks, stats.probes);

  // Bulk enumeration agrees as well.
  std::vector<uint8_t> scratch;
  std::vector<int> weak;
  std::vector<int> strict;
  for (int u = 0; u < n; ++u) {
    weak.clear();
    strict.clear();
    index.CollectReachable(u, &weak, &strict, &scratch);
    std::vector<int> weak_ref;
    std::vector<int> strict_ref;
    for (int v = 0; v < n; ++v) {
      if (v != u && closure.reach.Get(u, v)) weak_ref.push_back(v);
      if (closure.strict.Get(u, v)) strict_ref.push_back(v);
    }
    EXPECT_EQ(weak, weak_ref) << "weak set of " << u;
    EXPECT_EQ(strict, strict_ref) << "strict set of " << u;
  }
}

TEST(ReachabilityIndexTest, ChainExactIntervals) {
  Digraph dag(6);
  for (int v = 0; v + 1 < 6; ++v) {
    dag.AddEdge(v, v + 1, v % 2 == 0 ? OrderRel::kLe : OrderRel::kLt);
  }
  ReachabilityIndex index(dag);
  ExpectAgreesWithClosure(index, dag);
  EXPECT_TRUE(index.all_exact());
  ReachProbeStats stats;
  EXPECT_TRUE(index.Reaches(0, 5, &stats));
  EXPECT_TRUE(index.StrictlyReaches(0, 5, &stats));
  EXPECT_FALSE(index.StrictlyReaches(0, 1, &stats));  // only "<=" so far
  EXPECT_FALSE(index.Reaches(5, 0, &stats));
  EXPECT_EQ(stats.fallbacks, 0);
}

TEST(ReachabilityIndexTest, EmptyAndSingleton) {
  ReachabilityIndex empty{Digraph(0)};
  EXPECT_EQ(empty.num_vertices(), 0);
  ReachabilityIndex one{Digraph(1)};
  EXPECT_TRUE(one.Reaches(0, 0));
  EXPECT_FALSE(one.StrictlyReaches(0, 0));
  EXPECT_TRUE(one.Comparable(0, 0));
}

TEST(ReachabilityIndexTest, RandomDagsMatchClosure) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 40; ++round) {
    const int n = 1 + static_cast<int>(rng() % 40);
    const Digraph dag = RandomDag(rng, n, 1.0 + (round % 4));
    ReachabilityIndex index(dag);
    ExpectAgreesWithClosure(index, dag);
  }
}

// A tiny interval cap forces merged/approximate intervals, so the
// on-miss fallback walk carries the answers; they must stay exact.
TEST(ReachabilityIndexTest, ApproximateIntervalsFallBackCorrectly) {
  std::mt19937 rng(7);
  long long fallbacks = 0;
  for (int round = 0; round < 20; ++round) {
    const int n = 10 + static_cast<int>(rng() % 30);
    const Digraph dag = RandomDag(rng, n, 3.0);
    ReachabilityIndex index(dag, /*max_intervals=*/1);
    ExpectAgreesWithClosure(index, dag);
    const Reachability closure = ComputeReachability(dag);
    ReachProbeStats stats;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) index.Reaches(u, v, &stats);
    }
    fallbacks += stats.fallbacks;
  }
  // The cap is adversarial; at least some probe must have walked, or the
  // fallback path was not exercised at all.
  EXPECT_GT(fallbacks, 0);
}

TEST(ReachabilityIndexTest, AppendMatchesRebuiltClosure) {
  std::mt19937 rng(99);
  for (int round = 0; round < 15; ++round) {
    const int n = 5 + static_cast<int>(rng() % 25);
    const Digraph full = RandomDag(rng, n, 2.5);
    const auto& edges = full.edges();
    const size_t half = edges.size() / 2;

    Digraph base(n);
    for (size_t i = 0; i < half; ++i) {
      base.AddEdge(edges[i].from, edges[i].to, edges[i].rel);
    }
    ReachabilityIndex index(base);

    // Append the second half in random-sized chunks, checking against a
    // closure over the exact current edge set after every chunk.
    Digraph current = base;
    size_t next = half;
    while (next < edges.size()) {
      const size_t take =
          std::min(edges.size() - next, 1 + static_cast<size_t>(rng() % 4));
      std::vector<LabeledEdge> chunk(edges.begin() + next,
                                     edges.begin() + next + take);
      for (const LabeledEdge& e : chunk) {
        current.AddEdge(e.from, e.to, e.rel);
      }
      index.AppendEdges(chunk);
      next += take;
      ExpectAgreesWithClosure(index, current);
    }
  }
}

TEST(ReachabilityIndexTest, LifoRewindRestoresAnswers) {
  std::mt19937 rng(1234);
  for (int round = 0; round < 10; ++round) {
    const int n = 6 + static_cast<int>(rng() % 20);
    const Digraph full = RandomDag(rng, n, 2.0);
    ReachabilityIndex index{Digraph(n)};
    Digraph current(n);

    struct Frame {
      ReachabilityIndex::Checkpoint mark;
      std::vector<LabeledEdge> edges;  // edge set at the mark
    };
    std::vector<Frame> marks;
    size_t next = 0;
    const auto& edges = full.edges();
    for (int step = 0; step < 30; ++step) {
      const int op = static_cast<int>(rng() % 3);
      if (op == 0 && !marks.empty()) {
        // Pop: rewind to the most recent mark (LIFO discipline).
        index.RewindTo(marks.back().mark);
        Digraph restored(n);
        for (const LabeledEdge& e : marks.back().edges) {
          restored.AddEdge(e.from, e.to, e.rel);
        }
        current = restored;
        marks.pop_back();
      } else if (op == 1) {
        marks.push_back({index.Mark(), current.edges()});
      } else if (next < edges.size()) {
        const size_t take =
            std::min(edges.size() - next, 1 + static_cast<size_t>(rng() % 3));
        std::vector<LabeledEdge> chunk(edges.begin() + next,
                                       edges.begin() + next + take);
        for (const LabeledEdge& e : chunk) {
          current.AddEdge(e.from, e.to, e.rel);
        }
        index.AppendEdges(chunk);
        next += take;
      }
      ExpectAgreesWithClosure(index, current);
    }
  }
}

TEST(ReachabilityIndexTest, AddVertexAndRewind) {
  Digraph dag(3);
  dag.AddEdge(0, 1, OrderRel::kLt);
  ReachabilityIndex index(dag);
  const auto mark = index.Mark();

  const int v = index.AddVertex();
  EXPECT_EQ(v, 3);
  const LabeledEdge e{1, 3, OrderRel::kLe};
  index.AppendEdges(std::span<const LabeledEdge>(&e, 1));
  EXPECT_TRUE(index.Reaches(0, 3));
  EXPECT_TRUE(index.StrictlyReaches(0, 3));
  EXPECT_FALSE(index.Reaches(2, 3));

  index.RewindTo(mark);
  EXPECT_EQ(index.num_vertices(), 3);
  Digraph restored(3);
  restored.AddEdge(0, 1, OrderRel::kLt);
  ExpectAgreesWithClosure(index, restored);
}

TEST(ReachabilityIndexTest, DirtyRatioTriggersRebuild) {
  std::mt19937 rng(5);
  const int n = 60;
  const Digraph full = RandomDag(rng, n, 3.0);
  const auto& edges = full.edges();
  ASSERT_GT(edges.size(), 40u);

  Digraph base(n);
  for (size_t i = 0; i < 20; ++i) {
    base.AddEdge(edges[i].from, edges[i].to, edges[i].rel);
  }
  ReachabilityIndex index(base);
  EXPECT_EQ(index.rebuilds(), 1);
  for (size_t i = 20; i < edges.size(); ++i) {
    index.AppendEdges(std::span<const LabeledEdge>(&edges[i], 1));
  }
  // 20 base edges, threshold 0.25 * base + 8: many single-edge appends
  // must have crossed it (repeatedly).
  EXPECT_GT(index.rebuilds(), 1);
  // After the final rebuilds the delta must be bounded by the policy.
  EXPECT_LE(static_cast<double>(index.delta_edges()),
            ReachabilityIndex::kRebuildDirtyRatio *
                    static_cast<double>(index.num_edges()) +
                9.0);
  ExpectAgreesWithClosure(index, full);
}

// Shared read-only index probed from many threads: answers must match
// the closure from every thread (run under TSan in CI).
TEST(ReachabilityIndexTest, ConcurrentProbesAreSafe) {
  std::mt19937 rng(42);
  const int n = 48;
  const Digraph dag = RandomDag(rng, n, 2.5);
  // A small cap makes some probes take the fallback DFS, exercising the
  // local-allocation path concurrently.
  ReachabilityIndex index(dag, /*max_intervals=*/2);
  const Reachability closure = ComputeReachability(dag);

  std::vector<std::thread> threads;
  std::vector<int> mismatches(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      ReachProbeStats stats;
      std::vector<uint8_t> scratch;
      std::vector<int> weak;
      std::vector<int> strict;
      for (int rep = 0; rep < 50; ++rep) {
        for (int u = 0; u < n; ++u) {
          for (int v = 0; v < n; ++v) {
            if (index.Reaches(u, v, &stats) != closure.reach.Get(u, v)) {
              ++mismatches[t];
            }
            if (index.StrictlyReaches(u, v, &stats) !=
                closure.strict.Get(u, v)) {
              ++mismatches[t];
            }
          }
          weak.clear();
          strict.clear();
          index.CollectReachable(u, &weak, &strict, &scratch);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace iodb
