// Every lower-bound reduction of the paper, cross-validated against an
// independent oracle: Theorem 3.2 vs DPLL, Theorem 3.3 vs the Π₂
// evaluator, Theorem 3.4 vs DPLL, Theorem 4.6 vs the DNF tautology
// checker, Theorem 7.1 vs brute-force 3-coloring.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "logic/sat_solver.h"
#include "reductions/coloring_to_inequality.h"
#include "reductions/dnf_taut_to_monadic.h"
#include "reductions/qbf_to_entailment.h"
#include "reductions/sat_to_entailment.h"

namespace iodb {
namespace {

TEST(Theorem32Test, RejectsNonMonotone) {
  CnfFormula mixed{2, {{{0, true}, {1, false}, {1, true}}}};
  auto vocab = std::make_shared<Vocabulary>();
  EXPECT_FALSE(MonotoneSatToEntailment(mixed, vocab).ok());
}

TEST(Theorem32Test, UnsatisfiableEntails) {
  // x0 and ~x0 forced through two monotone clauses: x0|x0|x0 and
  // ~x0|~x0|~x0 need distinct vars in our generator, so build by hand:
  // {x0,x1,x2} all-positive and {~x0,~x1,~x2} all-negative is satisfiable;
  // pin every variable both ways instead by using three positive and
  // three negative clauses over three variables, unsatisfiable variant:
  // (x0|x1|x2)(~x0|~x1|~x2) is SAT; use the known-UNSAT monotone family:
  // all four positive triples over {0,1,2} plus all negative: still SAT
  // (set exactly one true)... Monotone UNSAT needs more structure; take
  // (x0|x0... ) — instead simply cross-check random instances below and
  // pin one tiny handcrafted UNSAT: clauses {x0,x1,x2} positive plus
  // negatives {~x0,~x1}, {~x0,~x2}, {~x1,~x2} are not 3-clauses; so rely
  // on the randomized cross-check for UNSAT coverage and check a SAT
  // instance here.
  CnfFormula sat{3, {{{0, true}, {1, true}, {2, true}},
                     {{0, false}, {1, false}, {2, false}}}};
  ASSERT_TRUE(sat.IsMonotone());
  auto vocab = std::make_shared<Vocabulary>();
  Result<SatReduction> reduction = MonotoneSatToEntailment(sat, vocab);
  ASSERT_TRUE(reduction.ok());
  Result<EntailResult> result =
      Entails(reduction.value().db, reduction.value().query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().entailed);  // satisfiable => not entailed
}

class Theorem32RandomTest : public ::testing::TestWithParam<int> {};

TEST_P(Theorem32RandomTest, MatchesDpllBoundedWidthLayout) {
  Rng rng(GetParam() + 1);
  // Small instances; duplicated variables across clauses stress the
  // "transmission" part of the construction.
  int num_vars = rng.UniformInt(3, 4);
  int num_clauses = rng.UniformInt(1, 3);
  CnfFormula cnf = RandomMonotone3Sat(num_vars, num_clauses, rng);
  SatSolver solver;
  bool satisfiable = solver.Solve(cnf).has_value();

  auto vocab = std::make_shared<Vocabulary>();
  Result<SatReduction> reduction =
      MonotoneSatToEntailment(cnf, vocab, /*bounded_width=*/true);
  ASSERT_TRUE(reduction.ok());
  Result<EntailResult> result =
      Entails(reduction.value().db, reduction.value().query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entailed, !satisfiable) << cnf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem32RandomTest, ::testing::Range(0, 12));

TEST(Theorem32Test, UnboundedLayoutSmallInstance) {
  Rng rng(77);
  CnfFormula cnf = RandomMonotone3Sat(3, 2, rng);
  SatSolver solver;
  bool satisfiable = solver.Solve(cnf).has_value();
  auto vocab = std::make_shared<Vocabulary>();
  Result<SatReduction> reduction =
      MonotoneSatToEntailment(cnf, vocab, /*bounded_width=*/false);
  ASSERT_TRUE(reduction.ok());
  Result<EntailResult> result =
      Entails(reduction.value().db, reduction.value().query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entailed, !satisfiable);
}

class Theorem33Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem33Test, MatchesPi2Evaluator) {
  Rng rng(GetParam() + 200);
  Pi2Formula formula = RandomPi2(rng.UniformInt(1, 2), rng.UniformInt(1, 2),
                                 rng.UniformInt(2, 5), rng);
  bool truth = EvaluatePi2(formula);
  auto vocab = std::make_shared<Vocabulary>();
  QbfReduction reduction = Pi2ToEntailment(formula, vocab);
  Result<EntailResult> result = Entails(reduction.db, reduction.query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entailed, truth)
      << formula.matrix->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem33Test, ::testing::Range(0, 15));

TEST(Theorem33Test, HandcraftedTrueAndFalse) {
  // ∀p ∃q (p ↔ q): true.
  auto iff = PropFormula::Or(
      PropFormula::And(PropFormula::Var(0), PropFormula::Var(1)),
      PropFormula::And(PropFormula::Not(PropFormula::Var(0)),
                       PropFormula::Not(PropFormula::Var(1))));
  {
    auto vocab = std::make_shared<Vocabulary>();
    QbfReduction r = Pi2ToEntailment({1, 1, iff}, vocab);
    Result<EntailResult> result = Entails(r.db, r.query);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().entailed);
  }
  // ∀p ∃q (p ∧ q): false.
  auto conj = PropFormula::And(PropFormula::Var(0), PropFormula::Var(1));
  {
    auto vocab = std::make_shared<Vocabulary>();
    QbfReduction r = Pi2ToEntailment({1, 1, conj}, vocab);
    Result<EntailResult> result = Entails(r.db, r.query);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.value().entailed);
  }
}

class Theorem34Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem34Test, ExpressionComplexityMatchesSat) {
  Rng rng(GetParam() + 300);
  CnfFormula cnf = RandomKSat(3, rng.UniformInt(1, 6), 3, rng);
  SatSolver solver;
  bool satisfiable = solver.Solve(cnf).has_value();
  auto vocab = std::make_shared<Vocabulary>();
  Database db = TruthTableDb(vocab);
  Query query = SatQuery(CnfToFormula(cnf), 3, vocab);
  Result<EntailResult> result = Entails(db, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entailed, satisfiable) << cnf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem34Test, ::testing::Range(0, 15));

class Theorem46Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem46Test, MatchesTautologyChecker) {
  Rng rng(GetParam() + 400);
  int num_vars = rng.UniformInt(2, 3);
  DnfFormula dnf = RandomDnf(num_vars, rng.UniformInt(2, 8),
                             rng.UniformInt(1, 2), rng);
  bool taut = IsTautology(dnf);
  auto vocab = std::make_shared<Vocabulary>();
  Result<MonadicTautReduction> reduction = DnfTautToEntailment(dnf, vocab);
  ASSERT_TRUE(reduction.ok());
  Result<EntailResult> result =
      Entails(reduction.value().db, reduction.value().query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entailed, taut) << dnf.ToString();
  // The query is conjunctive monadic: the Theorem 4.7 engine must apply.
  EXPECT_EQ(result.value().engine_used, EngineKind::kBoundedWidth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem46Test, ::testing::Range(0, 25));

TEST(Theorem46Test, CompleteTautologyEntails) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<MonadicTautReduction> reduction =
      DnfTautToEntailment(CompleteTautology(3), vocab);
  ASSERT_TRUE(reduction.ok());
  Result<EntailResult> result =
      Entails(reduction.value().db, reduction.value().query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().entailed);
}

TEST(Theorem71Test, TrianglesAndCliques) {
  SimpleGraph k3{3, {{0, 1}, {1, 2}, {0, 2}}};
  SimpleGraph k4{4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}};
  EXPECT_TRUE(IsThreeColorable(k3));
  EXPECT_FALSE(IsThreeColorable(k4));

  {
    auto vocab = std::make_shared<Vocabulary>();
    ColoringExpressionInstance inst = ColoringToExpression(k3, vocab);
    Result<EntailResult> r = Entails(inst.db, inst.query);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().entailed);
  }
  {
    auto vocab = std::make_shared<Vocabulary>();
    ColoringExpressionInstance inst = ColoringToExpression(k4, vocab);
    Result<EntailResult> r = Entails(inst.db, inst.query);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().entailed);
  }
  {
    auto vocab = std::make_shared<Vocabulary>();
    ColoringDataInstance inst = ColoringToData(k3, vocab);
    Result<EntailResult> r = Entails(inst.db, inst.query);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().entailed);  // 3-colorable => countermodel
  }
  {
    auto vocab = std::make_shared<Vocabulary>();
    ColoringDataInstance inst = ColoringToData(k4, vocab);
    Result<EntailResult> r = Entails(inst.db, inst.query);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().entailed);
  }
}

class Theorem71RandomTest : public ::testing::TestWithParam<int> {};

TEST_P(Theorem71RandomTest, BothPartsMatchOracle) {
  Rng rng(GetParam() + 500);
  SimpleGraph graph = RandomGraph(rng.UniformInt(3, 5), 0.5, rng);
  bool colorable = IsThreeColorable(graph);
  {
    auto vocab = std::make_shared<Vocabulary>();
    ColoringExpressionInstance inst = ColoringToExpression(graph, vocab);
    Result<EntailResult> r = Entails(inst.db, inst.query);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().entailed, colorable) << "seed " << GetParam();
  }
  {
    auto vocab = std::make_shared<Vocabulary>();
    ColoringDataInstance inst = ColoringToData(graph, vocab);
    Result<EntailResult> r = Entails(inst.db, inst.query);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().entailed, !colorable) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem71RandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace iodb
