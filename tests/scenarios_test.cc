// The paper's worked examples end to end: Example 1.1 (espionage) and
// Example 1.2 (gene alignment), plus the scheduling scenario.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/entail_disjunctive.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace iodb {
namespace {

TEST(EspionageTest, PaperVerdicts) {
  // Time is dense: the integrity constraint Ψ uses a nontight variable w
  // ("a point strictly inside both intervals"), so Example 1.1 is posed
  // under the rational-order semantics (under |=Fin a finite model can
  // simply omit the in-between point and Ψ never fires).
  EspionageScenario s = MakeEspionageScenario();
  EntailOptions dense;
  dense.semantics = OrderSemantics::kRational;
  // "Did someone enter the compound twice?" — yes.
  EXPECT_TRUE(MustEntail(s.db, s.twice_someone, dense));
  // "Did agent A or agent B enter twice?" — yes.
  EXPECT_TRUE(MustEntail(s.db, s.twice_either, dense));
  // But neither agent individually can be charged.
  EXPECT_FALSE(MustEntail(s.db, s.twice_a, dense));
  EXPECT_FALSE(MustEntail(s.db, s.twice_b, dense));
  // The integrity constraint alone is not violated in every model.
  EXPECT_FALSE(MustEntail(s.db, s.integrity, dense));
}

TEST(EspionageTest, FiniteSemanticsDiffersOnNontightIntegrity) {
  // The same queries under |=Fin: the disjunction is NOT entailed, a
  // concrete illustration of Proposition 2.1's strict containments on
  // nontight queries.
  EspionageScenario s = MakeEspionageScenario();
  EXPECT_FALSE(MustEntail(s.db, s.twice_either));
  EXPECT_FALSE(MustEntail(s.db, s.twice_someone));
}

TEST(EspionageTest, CountermodelForAgentA) {
  // A countermodel of Ψ ∨ Φ(A) is a consistent world in which agent A
  // entered only once and no intervals improperly overlap — the paper's
  // model (b).
  EspionageScenario s = MakeEspionageScenario();
  EntailOptions options;
  options.semantics = OrderSemantics::kRational;
  options.want_countermodel = true;
  Result<EntailResult> result = Entails(s.db, s.twice_a, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().entailed);
  EXPECT_TRUE(result.value().countermodel.has_value());
}

TEST(AlignmentTest, ForbiddenOverlapDetected) {
  // Sequences "AG" and "GA": any alignment must place some A and G at
  // comparable positions, but an alignment avoiding co-location exists
  // (shift one sequence), so the violation query is NOT entailed.
  auto vocab = std::make_shared<Vocabulary>();
  Database db = AlignmentDb("AG", "GA", vocab);
  Query violation = AlignmentViolationQuery({{'A', 'G'}}, vocab);
  EXPECT_FALSE(MustEntail(db, violation));
}

TEST(AlignmentTest, UnavoidableViolation) {
  // Sequences "A" and "G" with every pairing forbidden... two single
  // points may still be ordered apart, so no violation is forced.
  auto vocab = std::make_shared<Vocabulary>();
  Database db = AlignmentDb("A", "G", vocab);
  Query violation = AlignmentViolationQuery({{'A', 'G'}}, vocab);
  EXPECT_FALSE(MustEntail(db, violation));

  // Degenerate constraint (A, A): the violation collapses to ∃t A(t),
  // which any A-containing database entails.
  auto vocab2 = std::make_shared<Vocabulary>();
  Database db2 = AlignmentDb("A", "A", vocab2);
  Query violation2 = AlignmentViolationQuery({{'A', 'A'}}, vocab2);
  EXPECT_TRUE(MustEntail(db2, violation2));
}

TEST(AlignmentTest, ValidAlignmentExistsViaCountermodels) {
  // The key use: an alignment satisfying the constraints exists iff the
  // violation query is not entailed; the countermodel IS the alignment.
  auto vocab = std::make_shared<Vocabulary>();
  Database db = AlignmentDb(std::string("GACGGATTAG").substr(0, 4),
                            std::string("GATCGGAATAG").substr(0, 4), vocab);
  Query violation = AlignmentViolationQuery(
      {{'A', 'G'}, {'A', 'C'}, {'A', 'T'}, {'C', 'G'}, {'C', 'T'},
       {'G', 'T'}},
      vocab);
  EntailOptions options;
  options.want_countermodel = true;
  Result<EntailResult> result = Entails(db, violation, options);
  ASSERT_TRUE(result.ok());
  // "GACG" vs "GATC": an alignment without mismatched co-located bases
  // exists (e.g. interleave everything strictly), so not entailed.
  EXPECT_FALSE(result.value().entailed);
  ASSERT_TRUE(result.value().countermodel.has_value());
}

TEST(SchedulingTest, ValidSchedulesEnumerable) {
  Rng rng(5);
  SchedulingScenario s = MakeSchedulingScenario(2, 3, rng);
  Result<NormQuery> forbidden = NormalizeQuery(s.forbidden);
  ASSERT_TRUE(forbidden.ok());
  Result<NormDb> db = Normalize(s.db);
  ASSERT_TRUE(db.ok());

  long long schedules = 0;
  DisjunctiveOptions options;
  options.on_countermodel = [&](const FiniteModel&) {
    ++schedules;
    return schedules < 1000;
  };
  DisjunctiveOutcome outcome =
      EntailDisjunctive(db.value(), forbidden.value(), options);
  // Each worker's chain ends with Release and starts with Acquire, so
  // some interleavings violate the pattern but the all-of-worker-1-then-
  // worker-2 schedule... also violates (w0's Release precedes w1's
  // Acquire). Whether any valid schedule exists depends on merges;
  // at minimum the engine and the brute-force count must agree.
  EXPECT_EQ(outcome.entailed, schedules == 0);
}

}  // namespace
}  // namespace iodb
