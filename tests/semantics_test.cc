// The Section 2 semantics: the paper's separating examples and the
// reductions of Proposition 2.3 / Corollary 2.6, exercised through the
// engine facade.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/parser.h"
#include "core/semantics.h"
#include "workload/generators.h"

namespace iodb {
namespace {

bool EntailsUnder(const Database& db, const Query& query,
                  OrderSemantics semantics) {
  EntailOptions options;
  options.semantics = semantics;
  Result<EntailResult> result = Entails(db, query, options);
  IODB_CHECK(result.ok());
  return result.value().entailed;
}

TEST(SemanticsTest, IntegerOrderHasTwoPoints) {
  // |=Z ∃t1t2 [t1 < t2] but not |=Fin (Fin admits the empty/one-point
  // order; our empty database has the empty minimal model).
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  Result<Query> query = ParseQuery("exists t1 t2: t1 < t2", vocab);
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(EntailsUnder(db, query.value(), OrderSemantics::kFinite));
  EXPECT_TRUE(EntailsUnder(db, query.value(), OrderSemantics::kInteger));
  EXPECT_TRUE(EntailsUnder(db, query.value(), OrderSemantics::kRational));
}

TEST(SemanticsTest, DensenessSeparatesRationalFromInteger) {
  // The paper's example: D = [P(u), P(v), u < v],
  // Φ = ∃t1t2t3 [P(t1) ∧ t1<t2<t3 ∧ P(t3)]: |=Q but not |=Z (between two
  // integer points there need not be a third point... there must be a
  // point strictly between t1 and t3 — over Q always, over Z only if the
  // models can be chosen adversarially: not entailed).
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("P(u)\nP(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query = ParseQuery(
      "exists t1 t2 t3: P(t1) & t1 < t2 & t2 < t3 & P(t3)", vocab);
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(
      EntailsUnder(db.value(), query.value(), OrderSemantics::kFinite));
  EXPECT_FALSE(
      EntailsUnder(db.value(), query.value(), OrderSemantics::kInteger));
  EXPECT_TRUE(
      EntailsUnder(db.value(), query.value(), OrderSemantics::kRational));
}

TEST(SemanticsTest, Proposition21Containments) {
  // |=Fin ⊆ |=Z ⊆ |=Q on random (possibly nontight) monadic instances.
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(seed + 7000);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 2;
    Database db = RandomMonadicDb(params, vocab, rng);
    // Random query, sometimes with unlabeled (nontight) variables.
    Query query = RandomConjunctiveMonadicQuery(3, 2, 0.5, 0.3, 0.3, vocab,
                                                rng);
    bool fin = EntailsUnder(db, query, OrderSemantics::kFinite);
    bool z = EntailsUnder(db, query, OrderSemantics::kInteger);
    bool q = EntailsUnder(db, query, OrderSemantics::kRational);
    if (fin) {
      EXPECT_TRUE(z) << "seed " << seed;
    }
    if (z) {
      EXPECT_TRUE(q) << "seed " << seed;
    }
  }
}

TEST(SemanticsTest, TightQueriesAgreeEverywhere) {
  // Proposition 2.2: on tight queries the three semantics coincide.
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(seed + 8000);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 2;
    Database db = RandomMonadicDb(params, vocab, rng);
    // label_probability 1.0 in the generator's forced-label path makes
    // sequential queries tight.
    Query query =
        RandomSequentialQuery(rng.UniformInt(1, 3), 2, 0.5, 0.3, vocab, rng);
    bool fin = EntailsUnder(db, query, OrderSemantics::kFinite);
    bool z = EntailsUnder(db, query, OrderSemantics::kInteger);
    bool q = EntailsUnder(db, query, OrderSemantics::kRational);
    EXPECT_EQ(fin, z) << "seed " << seed;
    EXPECT_EQ(fin, q) << "seed " << seed;
  }
}

TEST(SemanticsTest, SentinelConstructionShape) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("u < v", vocab);
  ASSERT_TRUE(db.ok());
  Database with = AddIntegerSentinels(db.value(), 2);
  // 2 original + 2n sentinel constants.
  EXPECT_EQ(with.num_order_constants(), 6);
  // Chains l1<l2, r1<r2 plus l2<u<r1, l2<v<r1: 1 + 2 + 4 atoms.
  EXPECT_EQ(static_cast<int>(with.order_atoms().size()), 7);
  // n = 0: unchanged.
  Database same = AddIntegerSentinels(db.value(), 0);
  EXPECT_EQ(same.num_order_constants(), 2);
}

TEST(SemanticsTest, RationalTransformMakesTight) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(ParseDatabase("P(u)\nu<v", vocab).ok());
  Result<Query> query = ParseQuery(
      "exists t1 t2 t3: P(t1) & t1 < t2 & t2 < t3 & P(t3)", vocab);
  ASSERT_TRUE(query.ok());
  Result<NormQuery> norm = NormalizeQuery(query.value());
  ASSERT_TRUE(norm.ok());
  EXPECT_FALSE(norm.value().IsTight());
  NormQuery transformed = RationalTransform(norm.value());
  EXPECT_TRUE(transformed.IsTight());
  // t2 is gone; the full closure leaves t1 < t3.
  EXPECT_EQ(transformed.disjuncts[0].num_order_vars(), 2);
  ASSERT_EQ(transformed.disjuncts[0].dag.num_edges(), 1);
  EXPECT_EQ(transformed.disjuncts[0].dag.edges()[0].rel, OrderRel::kLt);
}

TEST(SemanticsTest, NamesAreReported) {
  EXPECT_STREQ(OrderSemanticsName(OrderSemantics::kFinite), "finite");
  EXPECT_STREQ(OrderSemanticsName(OrderSemantics::kInteger), "integer");
  EXPECT_STREQ(OrderSemanticsName(OrderSemantics::kRational), "rational");
}

}  // namespace
}  // namespace iodb
