#include <gtest/gtest.h>

#include "core/entail_bruteforce.h"
#include "core/flexiword.h"
#include "core/parser.h"
#include "core/seq.h"
#include "workload/generators.h"

namespace iodb {
namespace {

constexpr OrderRel kLt = OrderRel::kLt;
constexpr OrderRel kLe = OrderRel::kLe;

PredSet Set(std::initializer_list<int> ids) {
  PredSet s;
  for (int id : ids) s.Add(id);
  return s;
}

FlexiWord Pattern(std::vector<PredSet> symbols, std::vector<OrderRel> rels) {
  FlexiWord w;
  w.symbols = std::move(symbols);
  w.rels = std::move(rels);
  return w;
}

NormDb ParseNorm(const std::string& text, VocabularyPtr vocab) {
  Result<Database> db = ParseDatabase(text, std::move(vocab));
  IODB_CHECK(db.ok());
  Result<NormDb> norm = Normalize(db.value());
  IODB_CHECK(norm.ok());
  return std::move(norm.value());
}

VocabularyPtr Vocab3() {
  auto vocab = std::make_shared<Vocabulary>();
  DeclareMonadicPredicates(*vocab, 3);
  return vocab;
}

// Reference implementation: a sequential pattern is entailed iff every
// minimal model's word satisfies it (Lemma 4.1 specialization).
bool BruteSeq(const NormDb& db, const FlexiWord& pattern) {
  NormQuery query;
  query.vocab = db.vocab;
  query.disjuncts.push_back(
      ConjunctOfFlexiWord(pattern, db.vocab->num_predicates()));
  return EntailBruteForce(db, query).entailed;
}

TEST(SeqTest, EmptyPatternAlwaysEntailed) {
  NormDb db = ParseNorm("P0(u)", Vocab3());
  EXPECT_TRUE(SeqEntails(db, FlexiWord{}));
}

TEST(SeqTest, EmptyDatabaseEntailsNothing) {
  auto vocab = Vocab3();
  Database db(vocab);
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  EXPECT_FALSE(SeqEntails(norm.value(), Pattern({PredSet()}, {})));
}

TEST(SeqTest, UnlabeledPatternNeedsAPoint) {
  NormDb db = ParseNorm("u < v", Vocab3());
  EXPECT_TRUE(SeqEntails(db, Pattern({PredSet()}, {})));
  EXPECT_TRUE(SeqEntails(db, Pattern({PredSet(), PredSet()}, {kLt})));
  EXPECT_FALSE(
      SeqEntails(db, Pattern({PredSet(), PredSet(), PredSet()},
                             {kLt, kLt})));
}

TEST(SeqTest, WidthTwoMergeCase) {
  // Two incomparable labelled points: P0(u), P1(v). The pattern
  // [P0] <= [P1] is entailed (in every model u <= v or v <= u... no!
  // v < u is possible). It is NOT entailed. But [P0,P1]-free patterns
  // like [P0] alone are.
  NormDb db = ParseNorm("P0(u)\nP1(v)", Vocab3());
  EXPECT_TRUE(SeqEntails(db, Pattern({Set({0})}, {})));
  EXPECT_TRUE(SeqEntails(db, Pattern({Set({1})}, {})));
  EXPECT_FALSE(SeqEntails(db, Pattern({Set({0}), Set({1})}, {kLe})));
  EXPECT_FALSE(SeqEntails(db, Pattern({Set({0}), Set({1})}, {kLt})));
}

TEST(SeqTest, LeChainEntailsLePattern) {
  NormDb db = ParseNorm("P0(u)\nP1(v)\nu <= v", Vocab3());
  EXPECT_TRUE(SeqEntails(db, Pattern({Set({0}), Set({1})}, {kLe})));
  EXPECT_FALSE(SeqEntails(db, Pattern({Set({0}), Set({1})}, {kLt})));
}

TEST(SeqTest, MinorDeletionIsNotTooEager) {
  // Database: P0(a) < P1(b), and an incomparable P0(c) <= P1(d).
  // Pattern [P0] < [P1]: entailed via a < b in every model? Yes — a < b
  // always holds.
  NormDb db = ParseNorm("P0(a)\nP1(b)\na < b\nP0(c)\nP1(d)\nc <= d",
                        Vocab3());
  EXPECT_TRUE(SeqEntails(db, Pattern({Set({0}), Set({1})}, {kLt})));
}

TEST(SeqTest, CaseIEquivalenceScenario) {
  // Minimal vertex u fails the first symbol; its deletion must preserve
  // the verdict. Database: Q-ish noise point u before the useful chain.
  NormDb db = ParseNorm("P2(u)\nu < v\nP0(v)\nv < w\nP1(w)", Vocab3());
  EXPECT_TRUE(SeqEntails(db, Pattern({Set({0}), Set({1})}, {kLt})));
  EXPECT_FALSE(SeqEntails(db, Pattern({Set({1}), Set({0})}, {kLt})));
}

class SeqRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SeqRandomTest, AgreesWithBruteForce) {
  Rng rng(GetParam() * 7919 + 13);
  auto vocab = Vocab3();
  MonadicDbParams params;
  params.num_chains = rng.UniformInt(1, 3);
  params.chain_length = rng.UniformInt(1, 4);
  params.num_predicates = 3;
  params.label_probability = 0.5;
  params.le_probability = 0.4;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());

  for (int q = 0; q < 6; ++q) {
    int len = rng.UniformInt(1, 4);
    FlexiWord pattern;
    for (int i = 0; i < len; ++i) {
      PredSet symbol;
      for (int p = 0; p < 3; ++p) {
        if (rng.Bernoulli(0.35)) symbol.Add(p);
      }
      pattern.symbols.push_back(symbol);
      if (i > 0) {
        pattern.rels.push_back(rng.Bernoulli(0.5) ? kLt : kLe);
      }
    }
    EXPECT_EQ(SeqEntails(norm.value(), pattern),
              BruteSeq(norm.value(), pattern))
        << "seed " << GetParam() << " query " << q << " pattern "
        << pattern.ToString(*vocab);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqRandomTest, ::testing::Range(0, 60));

TEST(SeqTest, StatsAreReported) {
  NormDb db = ParseNorm("P0(u)\nu < v\nP1(v)", Vocab3());
  SeqStats stats;
  EXPECT_TRUE(SeqEntails(db, Pattern({Set({0}), Set({1})}, {kLt}), &stats));
  EXPECT_GT(stats.subset_tests, 0);
}

}  // namespace
}  // namespace iodb
