// Socket server tests (server/server.h): multi-client sessions over one
// shared service with snapshot-isolated reads, the disconnect-cancel
// fan-out, graceful shutdown drain, the TCP front end, and the session
// cap. The multi-client test is the serving layer's consistency proof
// and runs under the TSan CI job: M concurrent sessions interleave
// EVAL/APPEND/BATCH, every response's (uid, revision) identity must be
// a consistent snapshot, and the final state must equal a serial replay
// of the same mutations.

#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/line_channel.h"
#include "server/protocol.h"
#include "storage/wal.h"

namespace iodb {
namespace {

using server::LineChannel;
using server::ServingState;
using server::SocketServer;

std::string SocketPath(const std::string& name) {
  // sun_path is ~108 bytes; TempDir can be long, so fall back to /tmp.
  std::string path = testing::TempDir() + "/" + name;
  if (path.size() >= 100) path = "/tmp/" + name;
  return path;
}

// A minimal blocking protocol client over a connected socket.
class Client {
 public:
  static std::unique_ptr<Client> ConnectUnix(const std::string& path) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return nullptr;
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return nullptr;
    }
    return std::unique_ptr<Client>(new Client(fd));
  }

  static std::unique_ptr<Client> ConnectTcp(int port) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return nullptr;
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return nullptr;
    }
    return std::unique_ptr<Client>(new Client(fd));
  }

  ~Client() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool Send(const std::string& text) {
    channel_.Write(text);
    return channel_.Flush();
  }

  bool ReadLine(std::string* line) {
    return channel_.ReadLine(line) == LineChannel::ReadStatus::kLine;
  }

  // Sends one command and returns the single response line.
  std::string RoundTrip(const std::string& command) {
    if (!Send(command + "\n")) return "<send failed>";
    std::string line;
    if (!ReadLine(&line)) return "<read failed>";
    return line;
  }

 private:
  explicit Client(int fd) : fd_(fd), channel_(fd, fd) {}
  int fd_;
  LineChannel channel_;
};

struct ServerFixture {
  ServerFixture(const std::string& socket_name, int max_sessions = 256,
                int tcp_port = -1) {
    state = std::make_unique<ServingState>(ServiceOptions{},
                                           storage::WalSyncOptions{});
    server::ServerOptions options;
    options.unix_path = SocketPath(socket_name);
    options.tcp_port = tcp_port;
    options.max_sessions = max_sessions;
    Result<std::unique_ptr<SocketServer>> started =
        SocketServer::Start(state.get(), options);
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    if (started.ok()) server = std::move(started.value());
  }

  std::unique_ptr<ServingState> state;
  std::unique_ptr<SocketServer> server;
};

// Parses "ENTAILED  [..., db: <uid>@<revision>]" verdict lines.
struct Verdict {
  bool entailed = false;
  uint64_t revision = 0;
  bool parsed = false;
};

Verdict ParseVerdict(const std::string& line) {
  Verdict verdict;
  if (line.rfind("ENTAILED", 0) == 0) {
    verdict.entailed = true;
  } else if (line.rfind("NOT ENTAILED", 0) != 0) {
    return verdict;  // not a verdict line
  }
  size_t at = line.rfind('@');
  size_t close = line.rfind(']');
  if (at == std::string::npos || close == std::string::npos || close <= at) {
    return verdict;
  }
  verdict.revision = std::stoull(line.substr(at + 1, close - at - 1));
  verdict.parsed = true;
  return verdict;
}

TEST(ServerSocketTest, SingleSessionServesTheProtocol) {
  ServerFixture fixture("iodb_single.sock");
  ASSERT_NE(fixture.server, nullptr);
  std::unique_ptr<Client> client =
      Client::ConnectUnix(fixture.server->unix_path());
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->Send("LOAD base\nP(u)\nQ(v)\nu < v\nEND\n"));
  std::string line;
  ASSERT_TRUE(client->ReadLine(&line));
  EXPECT_EQ(line, "OK db=base atoms=3");

  EXPECT_EQ(client->RoundTrip(
                "EVAL base exists t1 t2: P(t1) & t1 < t2 & Q(t2)"),
            "ENTAILED  [engine: bounded-width, cache: miss]");
  EXPECT_EQ(client->RoundTrip("FROBNICATE"),
            "ERR unknown-verb 'FROBNICATE'");
  // OPEN is a single-session (stdin mode) verb.
  std::string open_response = client->RoundTrip("OPEN /tmp/nope");
  EXPECT_NE(open_response.find("ERR OPEN is not available"),
            std::string::npos)
      << open_response;
  ASSERT_TRUE(client->Send("QUIT\n"));

  fixture.server->Stop();
  EXPECT_EQ(fixture.server->stats().sessions_accepted, 1);
  EXPECT_EQ(fixture.server->stats().sessions_active, 0);
}

TEST(ServerSocketTest, TcpLoopbackServes) {
  ServerFixture fixture("iodb_tcp.sock", 256, /*tcp_port=*/0);
  ASSERT_NE(fixture.server, nullptr);
  ASSERT_GT(fixture.server->tcp_port(), 0);

  std::unique_ptr<Client> client =
      Client::ConnectTcp(fixture.server->tcp_port());
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Send("LOAD base\nP(u)\nEND\n"));
  std::string line;
  ASSERT_TRUE(client->ReadLine(&line));
  EXPECT_EQ(line, "OK db=base atoms=1");
  EXPECT_EQ(client->RoundTrip("EVAL base exists t: P(t)"),
            "ENTAILED  [engine: auto, cache: miss]");
  client.reset();
  fixture.server->Stop();
}

TEST(ServerSocketTest, RejectsSessionsOverTheCap) {
  ServerFixture fixture("iodb_cap.sock", /*max_sessions=*/1);
  ASSERT_NE(fixture.server, nullptr);
  std::unique_ptr<Client> first =
      Client::ConnectUnix(fixture.server->unix_path());
  ASSERT_NE(first, nullptr);
  // Roundtrip so the accept loop has definitely admitted the session.
  EXPECT_NE(first->RoundTrip("INFO").find("OK databases="),
            std::string::npos);

  std::unique_ptr<Client> second =
      Client::ConnectUnix(fixture.server->unix_path());
  ASSERT_NE(second, nullptr);
  std::string line;
  ASSERT_TRUE(second->ReadLine(&line));
  EXPECT_EQ(line, "ERR too-many-sessions");

  second.reset();
  first.reset();
  fixture.server->Stop();
  EXPECT_EQ(fixture.server->stats().sessions_rejected, 1);
}

// Satellite: M concurrent sessions interleaving EVAL/APPEND/BATCH. The
// appended order fact flips a query's verdict at a known revision;
// every response's pinned (revision) must agree with its verdict, and
// the final served state must equal a serial replay of the same
// mutations on a fresh service.
TEST(ServerSocketTest, MultiClientSnapshotConsistency) {
  ServerFixture fixture("iodb_multi.sock");
  ASSERT_NE(fixture.server, nullptr);
  const std::string path = fixture.server->unix_path();
  const std::string query = "exists t1 t2: P(t1) & t1 < t2 & Q(t2)";

  {
    std::unique_ptr<Client> loader = Client::ConnectUnix(path);
    ASSERT_NE(loader, nullptr);
    // u and v are order points (below the anchor z) but mutually
    // unordered, so the query's verdict hinges on the appended u < v.
    ASSERT_TRUE(loader->Send("LOAD base\nP(u)\nQ(v)\nu < z\nv < z\nEND\n"));
    std::string line;
    ASSERT_TRUE(loader->ReadLine(&line));
    ASSERT_EQ(line, "OK db=base atoms=4");
    loader->Send("QUIT\n");
  }

  // The mutation stream: unordered padding facts around the one order
  // fact that makes the query entailed.
  std::vector<std::string> appends;
  for (int i = 0; i < 4; ++i) appends.push_back("P(pad" + std::to_string(i) + ")");
  appends.push_back("u < v");  // the flip
  for (int i = 0; i < 4; ++i) appends.push_back("Q(qad" + std::to_string(i) + ")");

  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::vector<std::vector<Verdict>> observed(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::unique_ptr<Client> client = Client::ConnectUnix(path);
      ASSERT_NE(client, nullptr);
      std::vector<Verdict>& log = observed[static_cast<size_t>(t)];
      while (!done.load(std::memory_order_acquire)) {
        if (t % 2 == 0) {
          Verdict verdict = ParseVerdict(
              client->RoundTrip("EVAL base --identity " + query));
          ASSERT_TRUE(verdict.parsed);
          log.push_back(verdict);
        } else {
          // Batch of two identical identity-reporting requests: both
          // members pin at batch start, so they must agree.
          ASSERT_TRUE(client->Send("BATCH 2\nbase --identity " + query +
                                   "\nbase --identity " + query + "\n"));
          std::string line1, line2;
          ASSERT_TRUE(client->ReadLine(&line1));
          ASSERT_TRUE(client->ReadLine(&line2));
          Verdict v1 = ParseVerdict(line1), v2 = ParseVerdict(line2);
          ASSERT_TRUE(v1.parsed && v2.parsed) << line1 << "\n" << line2;
          EXPECT_EQ(v1.revision, v2.revision);
          EXPECT_EQ(v1.entailed, v2.entailed);
          log.push_back(v1);
          log.push_back(v2);
        }
      }
      client->Send("QUIT\n");
    });
  }

  // One writer session streams the appends, recording each acknowledged
  // revision; readers race every publish boundary.
  std::vector<uint64_t> append_revisions;
  {
    std::unique_ptr<Client> writer = Client::ConnectUnix(path);
    ASSERT_NE(writer, nullptr);
    for (const std::string& text : appends) {
      ASSERT_TRUE(writer->Send("APPEND base\n" + text + "\nEND\n"));
      std::string ack;
      ASSERT_TRUE(writer->ReadLine(&ack));
      ASSERT_EQ(ack.rfind("OK db=base ", 0), 0u) << ack;
      size_t rev = ack.rfind("revision=");
      ASSERT_NE(rev, std::string::npos) << ack;
      append_revisions.push_back(std::stoull(ack.substr(rev + 9)));
      // A short stagger so reads interleave between publishes too.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writer->Send("QUIT\n");
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // Consistency: verdict == (pinned revision >= flip revision).
  const uint64_t flip_revision = append_revisions[4];
  long long total = 0;
  for (const std::vector<Verdict>& log : observed) {
    for (const Verdict& verdict : log) {
      EXPECT_EQ(verdict.entailed, verdict.revision >= flip_revision)
          << "revision " << verdict.revision << " (flip at "
          << flip_revision << ")";
      ++total;
    }
  }
  EXPECT_GT(total, 0);

  // Serial-replay equivalence: the same LOAD + appends applied in order
  // on a fresh service give the same atom count and revision.
  EvaluationService serial;
  ASSERT_TRUE(serial.Load("base", "P(u)\nQ(v)\nu < z\nv < z").ok());
  Result<DbInfo> last(Status::InvalidArgument("no appends"));
  for (const std::string& text : appends) {
    Result<std::vector<storage::WalRecord>> records =
        storage::ParseMutationText(text, serial.vocab());
    ASSERT_TRUE(records.ok());
    last = serial.Mutate("base", [&](Database* db) {
      return storage::ApplyWalRecords(records.value(), db);
    });
    ASSERT_TRUE(last.ok());
  }
  std::unique_ptr<Client> checker = Client::ConnectUnix(path);
  ASSERT_NE(checker, nullptr);
  std::string info = checker->RoundTrip("INFO base");
  EXPECT_NE(info.find("atoms=" + std::to_string(last.value().atoms) + " "),
            std::string::npos)
      << info;
  EXPECT_NE(info.find("revision=" + std::to_string(last.value().revision)),
            std::string::npos)
      << info;
  checker->Send("QUIT\n");
  checker.reset();

  fixture.server->Stop();
  EXPECT_EQ(fixture.server->stats().sessions_active, 0);
}

// A genuinely long-running request for the drain/disconnect tests:
// three parallel chains whose interleavings the brute-force engine must
// search before the rare countermodel (R on two chain tops) appears —
// ~8 s of work on a release build, so only a tripped cancel token can
// end it promptly. Sized so the engine checks its budget frequently.
std::string HardLoadText() {
  std::string load = "LOAD hard\n";
  for (char chain : {'a', 'b', 'c'}) {
    for (int i = 1; i <= 11; ++i) {
      load += std::string("P(") + chain + std::to_string(i) + ")\n";
      if (i > 1) {
        load += std::string(1, chain) + std::to_string(i - 1) + " < " +
                chain + std::to_string(i) + "\n";
      }
    }
  }
  load += "R(a11)\nR(b11)\nEND\n";
  return load;
}

constexpr char kHardLoadAck[] = "OK db=hard atoms=65";
constexpr char kHardEval[] =
    "EVAL hard --engine=brute-force --deadline-ms=30000 "
    "exists t1 t2: R(t1) & t1 < t2 & R(t2)\n";

// Shutdown drain: Stop() while a session is blocked idle and another is
// mid-request must cancel the in-flight evaluation and join every
// session promptly — never hang on a blocked read.
TEST(ServerSocketTest, StopDrainsIdleAndBusySessions) {
  ServerFixture fixture("iodb_drain.sock");
  ASSERT_NE(fixture.server, nullptr);
  const std::string path = fixture.server->unix_path();

  // An idle session, provably admitted (roundtrip), now blocked reading.
  std::unique_ptr<Client> idle = Client::ConnectUnix(path);
  ASSERT_NE(idle, nullptr);
  EXPECT_NE(idle->RoundTrip("INFO").find("OK databases="),
            std::string::npos);

  // A busy session: a hard enumeration (many unordered points) with a
  // deadline backstop so a broken cancel path fails the test loudly
  // instead of hanging it.
  std::unique_ptr<Client> busy = Client::ConnectUnix(path);
  ASSERT_NE(busy, nullptr);
  ASSERT_TRUE(busy->Send(HardLoadText()));
  std::string line;
  ASSERT_TRUE(busy->ReadLine(&line));
  ASSERT_EQ(line, kHardLoadAck);
  ASSERT_TRUE(busy->Send(kHardEval));
  // Give the request a moment to be mid-evaluation.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = std::chrono::steady_clock::now();
  fixture.server->Stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            20)
      << "Stop() did not drain promptly";
  EXPECT_EQ(fixture.server->stats().sessions_active, 0);
}

// Disconnect fan-out: abruptly closing a session that is mid-request
// trips its cancel token (counted in disconnect_cancels) and the
// session is reaped.
TEST(ServerSocketTest, DisconnectCancelsInFlightWork) {
  ServerFixture fixture("iodb_dc.sock");
  ASSERT_NE(fixture.server, nullptr);

  std::unique_ptr<Client> client =
      Client::ConnectUnix(fixture.server->unix_path());
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Send(HardLoadText()));
  std::string line;
  ASSERT_TRUE(client->ReadLine(&line));
  ASSERT_EQ(line, kHardLoadAck);
  ASSERT_TRUE(client->Send(kHardEval));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client->Close();  // abrupt disconnect, no QUIT

  // The monitor must observe the hangup, cancel the evaluation, and
  // reap the session.
  bool reaped = false;
  for (int i = 0; i < 400 && !reaped; ++i) {
    SocketServer::Stats stats = fixture.server->stats();
    reaped = stats.sessions_active == 0 && stats.disconnect_cancels >= 1;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  SocketServer::Stats stats = fixture.server->stats();
  EXPECT_EQ(stats.sessions_active, 0);
  EXPECT_GE(stats.disconnect_cancels, 1);
  fixture.server->Stop();
}

}  // namespace
}  // namespace iodb
