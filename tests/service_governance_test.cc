// Service-level governance (service/service.h, service/request.h): the
// wire-form deadline/step-budget flags, ServiceOptions defaults and
// per-request overrides, batch group budgets, and cancellation through
// Eval / EvalBatch.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/request.h"
#include "service/service.h"

namespace iodb {
namespace {

constexpr char kDbText[] = "P(u)\nQ(v)\nu < v\n";
constexpr char kQuery[] = "exists t1 t2: P(t1) & t1 < t2 & Q(t2)";

// --- Wire form -------------------------------------------------------------

TEST(EvalRequestGovernanceTest, ParsesDeadlineAndStepBudgetFlags) {
  Result<EvalRequest> request = ParseEvalRequest(
      "db --deadline-ms=250 --step-budget=5000 exists t: P(t)");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().db, "db");
  EXPECT_EQ(request.value().deadline_ms, 250);
  EXPECT_EQ(request.value().step_budget, 5000);
  EXPECT_EQ(request.value().query, "exists t: P(t)");
}

TEST(EvalRequestGovernanceTest, DefaultsAreUnlimited) {
  Result<EvalRequest> request = ParseEvalRequest("db exists t: P(t)");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().deadline_ms, -1);
  EXPECT_EQ(request.value().step_budget, -1);
}

TEST(EvalRequestGovernanceTest, RejectsMalformedValues) {
  for (const char* line :
       {"db --deadline-ms= exists t: P(t)", "db --deadline-ms=-5 q",
        "db --deadline-ms=12x q", "db --step-budget=abc q",
        "db --step-budget= q"}) {
    EXPECT_FALSE(ParseEvalRequest(line).ok()) << line;
  }
}

TEST(EvalRequestGovernanceTest, FormatRoundTrips) {
  EvalRequest request;
  request.db = "orders";
  request.query = "exists t: P(t)";
  request.deadline_ms = 75;
  request.step_budget = 123456;
  request.options.want_countermodel = true;
  const std::string line = FormatEvalRequest(request);
  EXPECT_NE(line.find("--deadline-ms=75"), std::string::npos) << line;
  EXPECT_NE(line.find("--step-budget=123456"), std::string::npos) << line;
  Result<EvalRequest> reparsed = ParseEvalRequest(line);
  ASSERT_TRUE(reparsed.ok()) << line << ": " << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().db, request.db);
  EXPECT_EQ(reparsed.value().query, request.query);
  EXPECT_EQ(reparsed.value().deadline_ms, request.deadline_ms);
  EXPECT_EQ(reparsed.value().step_budget, request.step_budget);
  EXPECT_EQ(reparsed.value().options.want_countermodel, true);
  // Unlimited requests render without governance flags.
  request.deadline_ms = -1;
  request.step_budget = -1;
  const std::string plain = FormatEvalRequest(request);
  EXPECT_EQ(plain.find("--deadline-ms"), std::string::npos) << plain;
  EXPECT_EQ(plain.find("--step-budget"), std::string::npos) << plain;
}

// --- Eval ------------------------------------------------------------------

EvalRequest MakeRequest(long long deadline_ms = -1,
                        long long step_budget = -1) {
  EvalRequest request;
  request.db = "t";
  request.query = kQuery;
  request.deadline_ms = deadline_ms;
  request.step_budget = step_budget;
  return request;
}

TEST(ServiceGovernanceTest, UnlimitedRequestSucceeds) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("t", kDbText).ok());
  Result<EvalResponse> response = service.Eval(MakeRequest());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().entailed);
}

TEST(ServiceGovernanceTest, ZeroStepBudgetFailsTyped) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("t", kDbText).ok());
  Result<EvalResponse> response =
      service.Eval(MakeRequest(/*deadline_ms=*/-1, /*step_budget=*/0));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(response.status().message().find("step budget"),
            std::string::npos)
      << response.status().ToString();
}

TEST(ServiceGovernanceTest, ExpiredDeadlineFailsAdmission) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("t", kDbText).ok());
  Result<EvalResponse> response =
      service.Eval(MakeRequest(/*deadline_ms=*/0));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ServiceGovernanceTest, ServiceDefaultAppliesAndRequestOverrides) {
  ServiceOptions options;
  options.default_step_budget = 0;  // everything exhausts by default
  EvaluationService service(options);
  ASSERT_TRUE(service.Load("t", kDbText).ok());

  Result<EvalResponse> defaulted = service.Eval(MakeRequest());
  ASSERT_FALSE(defaulted.ok());
  EXPECT_EQ(defaulted.status().code(), StatusCode::kDeadlineExceeded);

  // A request-level budget overrides the default (and a generous one
  // completes normally).
  Result<EvalResponse> overridden =
      service.Eval(MakeRequest(/*deadline_ms=*/-1, /*step_budget=*/1 << 20));
  ASSERT_TRUE(overridden.ok()) << overridden.status().ToString();
  EXPECT_TRUE(overridden.value().entailed);
}

TEST(ServiceGovernanceTest, PreCancelledTokenFailsWithCancelled) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("t", kDbText).ok());
  CancelToken token;
  token.Cancel();
  Result<EvalResponse> response = service.Eval(MakeRequest(), &token);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);
}

// --- EvalBatch -------------------------------------------------------------

TEST(ServiceGovernanceTest, BatchGroupSharesSmallestBudget) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("t", kDbText).ok());
  // Same query => same plan group. One member carries a zero step
  // budget, so the whole group's shared budget is zero and BOTH members
  // fail fast with the typed status.
  std::vector<EvalRequest> requests = {MakeRequest(),
                                       MakeRequest(-1, /*step_budget=*/0)};
  std::vector<Result<EvalResponse>> responses = service.EvalBatch(requests);
  ASSERT_EQ(responses.size(), 2u);
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_FALSE(responses[i].ok()) << "member " << i;
    EXPECT_EQ(responses[i].status().code(), StatusCode::kDeadlineExceeded)
        << "member " << i << ": " << responses[i].status().ToString();
  }
}

TEST(ServiceGovernanceTest, BatchGovernanceIsPerPlanGroup) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("t", kDbText).ok());
  // Different query texts compile to different plans, so the exhausted
  // group must not drag the unlimited group down.
  EvalRequest limited = MakeRequest(-1, /*step_budget=*/0);
  EvalRequest unlimited = MakeRequest();
  unlimited.query = "exists t: P(t)";
  std::vector<EvalRequest> requests = {limited, unlimited};
  std::vector<Result<EvalResponse>> responses = service.EvalBatch(requests);
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_FALSE(responses[0].ok());
  EXPECT_EQ(responses[0].status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(responses[1].ok()) << responses[1].status().ToString();
  EXPECT_TRUE(responses[1].value().entailed);
}

TEST(ServiceGovernanceTest, BatchCancelTokenCancelsEveryGroup) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("t", kDbText).ok());
  CancelToken token;
  token.Cancel();
  std::vector<EvalRequest> requests = {MakeRequest(), MakeRequest()};
  std::vector<Result<EvalResponse>> responses =
      service.EvalBatch(requests, &token);
  ASSERT_EQ(responses.size(), 2u);
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_FALSE(responses[i].ok()) << "member " << i;
    EXPECT_EQ(responses[i].status().code(), StatusCode::kCancelled)
        << "member " << i;
  }
}

TEST(ServiceGovernanceTest, GovernedRequestsDoNotPolluteStats) {
  // Governance is evaluation-time state: a governed and an ungoverned
  // request for the same (query, options) share one cached plan.
  EvaluationService service;
  ASSERT_TRUE(service.Load("t", kDbText).ok());
  ASSERT_TRUE(service.Eval(MakeRequest()).ok());
  Result<EvalResponse> governed =
      service.Eval(MakeRequest(-1, /*step_budget=*/1 << 20));
  ASSERT_TRUE(governed.ok());
  EXPECT_TRUE(governed.value().plan_cache_hit);
  EXPECT_EQ(service.stats().plans_compiled, 1);
}

}  // namespace
}  // namespace iodb
