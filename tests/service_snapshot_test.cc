// MVCC service tests (service/service.h): published versions are
// immutable, a pinned Snapshot() survives later publishes, mutations
// fork-and-republish under the same uid with advancing revisions, the
// --identity response fields report exactly the pinned version, failed
// mutations publish nothing, and a readers-vs-writer hammer (run under
// the TSan CI job) exercises the pin/publish seam concurrently.

#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/request.h"

namespace iodb {
namespace {

EvalRequest Req(const std::string& db, const std::string& query,
                bool identity = false) {
  EvalRequest request;
  request.db = db;
  request.query = query;
  request.report_identity = identity;
  return request;
}

TEST(ServiceSnapshotTest, PinnedSnapshotSurvivesLaterPublishes) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("db", "P(u)\nQ(v)").ok());

  EvaluationService::DatabasePtr pinned = service.Snapshot("db");
  ASSERT_NE(pinned, nullptr);
  const int atoms_before = pinned->SizeAtoms();
  const uint64_t revision_before = pinned->revision();

  ASSERT_TRUE(service
                  .Mutate("db",
                          [](Database* db) {
                            db->AddFact("P", {"w"});
                            return Status::Ok();
                          })
                  .ok());

  // The pin still sees the old version, bit for bit.
  EXPECT_EQ(pinned->SizeAtoms(), atoms_before);
  EXPECT_EQ(pinned->revision(), revision_before);

  // A fresh pin sees the new version; same uid, later revision.
  EvaluationService::DatabasePtr fresh = service.Snapshot("db");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->uid(), pinned->uid());
  EXPECT_GT(fresh->revision(), revision_before);
  EXPECT_EQ(fresh->SizeAtoms(), atoms_before + 1);
}

TEST(ServiceSnapshotTest, MutateKeepsUidAndLoadReplacesIt) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("db", "P(u)").ok());
  const uint64_t uid = service.Snapshot("db")->uid();

  Result<DbInfo> mutated = service.Mutate("db", [](Database* db) {
    db->AddFact("P", {"x"});
    return Status::Ok();
  });
  ASSERT_TRUE(mutated.ok());
  EXPECT_EQ(mutated.value().uid, uid);

  // Re-LOAD is a replacement: a fresh object, fresh uid, so no derived
  // cache can confuse the two lineages.
  ASSERT_TRUE(service.Load("db", "P(u)").ok());
  EXPECT_NE(service.Snapshot("db")->uid(), uid);
}

TEST(ServiceSnapshotTest, IdentityFieldsReportThePinnedVersion) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("db", "P(u)\nQ(v)\nu < v").ok());
  EvaluationService::DatabasePtr pinned = service.Snapshot("db");

  Result<EvalResponse> response =
      service.Eval(Req("db", "exists t: P(t)", /*identity=*/true));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().db_uid, pinned->uid());
  EXPECT_EQ(response.value().db_revision, pinned->revision());

  // The wire rendering carries the identity inside the bracket.
  const std::string line = FormatResponseLine(response.value());
  EXPECT_NE(line.find("db: " + std::to_string(pinned->uid()) + "@" +
                      std::to_string(pinned->revision())),
            std::string::npos)
      << line;

  // Without the flag the line is unchanged (golden-transcript stable).
  Result<EvalResponse> plain = service.Eval(Req("db", "exists t: P(t)"));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(FormatResponseLine(plain.value()).find("db:"),
            std::string::npos);
}

TEST(ServiceSnapshotTest, FailedMutationPublishesNothing) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("db", "P(u)").ok());
  EvaluationService::DatabasePtr before = service.Snapshot("db");
  const long long publishes_before = service.stats().publishes;

  Result<DbInfo> failed = service.Mutate("db", [](Database* db) {
    db->AddFact("P", {"ghost"});  // applied to the fork only
    return Status::InvalidArgument("injected mutation failure");
  });
  ASSERT_FALSE(failed.ok());

  // The published version is the exact same object; the fork died.
  EXPECT_EQ(service.Snapshot("db").get(), before.get());
  EXPECT_EQ(service.stats().publishes, publishes_before);
}

TEST(ServiceSnapshotTest, BeforePublishSeesTheForkAndCanVeto) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("db", "P(u)").ok());
  EvaluationService::DatabasePtr before = service.Snapshot("db");

  // The hook observes the mutated fork (the WAL-logging seam: the
  // record is validated and applied before it is logged)...
  int hook_atoms = -1;
  ASSERT_TRUE(service
                  .Mutate(
                      "db",
                      [](Database* db) {
                        db->AddFact("P", {"x"});
                        return Status::Ok();
                      },
                      [&](const Database& fork) {
                        hook_atoms = fork.SizeAtoms();
                        return Status::Ok();
                      })
                  .ok());
  EXPECT_EQ(hook_atoms, before->SizeAtoms() + 1);

  // ... and a hook failure vetoes the publish entirely.
  EvaluationService::DatabasePtr mid = service.Snapshot("db");
  Result<DbInfo> vetoed = service.Mutate(
      "db",
      [](Database* db) {
        db->AddFact("P", {"y"});
        return Status::Ok();
      },
      [](const Database&) {
        return Status::InvalidArgument("injected log failure");
      });
  ASSERT_FALSE(vetoed.ok());
  EXPECT_EQ(service.Snapshot("db").get(), mid.get());
}

TEST(ServiceSnapshotTest, MutateUnknownDatabaseFails) {
  EvaluationService service;
  Result<DbInfo> result = service.Mutate("nosuchdb", [](Database*) {
    return Status::Ok();
  });
  ASSERT_FALSE(result.ok());
}

// Readers vs. writer hammer (run under the TSan CI job): reader threads
// evaluate with --identity while the writer publishes a stream of
// mutations. The query's verdict flips exactly once, at a revision the
// writer records. Each reader logs every (revision, verdict) pair it
// observed; after the join, each pair must satisfy
// verdict == (revision >= flip) — i.e. every read served a consistent
// published version, never a half-published one. (Validation happens
// after the join because a reader can legitimately pin the flipped
// version before the writer's own record of the flip revision lands.)
TEST(ServiceSnapshotTest, ConcurrentReadersSeeConsistentSnapshots) {
  EvaluationService service;
  // P(u) and Q(v) are order points (both below the anchor z) but
  // mutually unordered: the query is not entailed until the writer
  // asserts u < v.
  ASSERT_TRUE(service.Load("db", "P(u)\nQ(v)\nu < z\nv < z").ok());
  const std::string query = "exists t1 t2: P(t1) & t1 < t2 & Q(t2)";

  std::atomic<bool> done{false};
  std::atomic<long long> reads_started{0};

  constexpr int kReaders = 4;
  struct Observation {
    uint64_t revision;
    bool entailed;
  };
  std::vector<std::vector<Observation>> observed(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!done.load(std::memory_order_acquire)) {
        reads_started.fetch_add(1, std::memory_order_relaxed);
        Result<EvalResponse> response =
            service.Eval(Req("db", query, /*identity=*/true));
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        observed[static_cast<size_t>(t)].push_back(
            {response.value().db_revision, response.value().entailed});
      }
    });
  }

  // Don't start publishing until the readers are actually reading — on
  // a loaded machine the writer could otherwise finish before a single
  // reader thread gets scheduled, and the hammer would race nothing.
  while (reads_started.load(std::memory_order_relaxed) < kReaders) {
    std::this_thread::yield();
  }

  // The writer publishes padding mutations (each a new revision), then
  // the flip, then more padding — so readers race version boundaries on
  // both sides of the flip.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(service
                    .Mutate("db",
                            [i](Database* db) {
                              db->AddFact("P", {"pad" + std::to_string(i)});
                              return Status::Ok();
                            })
                    .ok());
  }
  Result<DbInfo> flip = service.Mutate("db", [](Database* db) {
    db->AddOrder("u", OrderRel::kLt, "v");
    return Status::Ok();
  });
  ASSERT_TRUE(flip.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(service
                    .Mutate("db",
                            [i](Database* db) {
                              db->AddFact("Q", {"qad" + std::to_string(i)});
                              return Status::Ok();
                            })
                    .ok());
  }

  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // Every observed (revision, verdict) pair is consistent with the flip.
  const uint64_t flip_revision = flip.value().revision;
  long long total_reads = 0;
  for (const std::vector<Observation>& reader_log : observed) {
    for (const Observation& obs : reader_log) {
      EXPECT_EQ(obs.entailed, obs.revision >= flip_revision)
          << "revision " << obs.revision << " (flip at " << flip_revision
          << ")";
      ++total_reads;
    }
  }
  EXPECT_GT(total_reads, 0);

  // The final published state reflects every mutation.
  EvaluationService::DatabasePtr final_db = service.Snapshot("db");
  EXPECT_EQ(final_db->SizeAtoms(), 4 + 6 + 1 + 6);  // base + pads + flip + pads
  EXPECT_GE(final_db->revision(), flip_revision);
}

// The serial edge of the same property: a mutation is visible to the
// very next request after Mutate returns.
TEST(ServiceSnapshotTest, PublishIsVisibleOnlyAfterMutateReturns) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("db", "P(u)\nQ(v)\nu < z\nv < z").ok());
  const std::string query = "exists t1 t2: P(t1) & t1 < t2 & Q(t2)";

  Result<EvalResponse> before = service.Eval(Req("db", query));
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.value().entailed);

  ASSERT_TRUE(service
                  .Mutate("db",
                          [](Database* db) {
                            db->AddOrder("u", OrderRel::kLt, "v");
                            return Status::Ok();
                          })
                  .ok());

  Result<EvalResponse> after = service.Eval(Req("db", query));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().entailed);
}

}  // namespace
}  // namespace iodb
