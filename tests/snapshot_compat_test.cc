// Backward compatibility of snapshot format v2 (the optional statistics
// section) with pre-statistics v1 files: v1 snapshots open with lazily
// rebuilt statistics, re-encode as byte-stable v2, and the corruption
// guarantees extend over the new section — every flipped byte in the
// statistics region is caught by a checksum, a well-checksummed but
// malformed statistics payload is a decode error, and a stale-identity
// statistics section is silently dropped (statistics are advisory).
//
// V1 files are synthesized from v2 bytes by stripping the statistics
// section and rewriting the header/table — bit-for-bit what the v1
// encoder produced, since v2 only appended a section. A static v1
// fixture (hex bytes committed below) pins the reader against format
// drift that in-process synthesis alone would miss.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats.h"
#include "storage/codec.h"

namespace iodb {
namespace {

// Mirrors the layout constants of storage/snapshot.cc.
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 4 + 8;
constexpr size_t kEntryBytes = 4 + 4 + 8 + 8 + 8;
constexpr size_t kVersionOffset = 8;
constexpr size_t kCountOffset = 8 + 4 + 4;
constexpr size_t kTableChecksumOffset = 8 + 4 + 4 + 4;
constexpr uint32_t kStatisticsSectionId = 7;

Database MixedDatabase(VocabularyPtr vocab) {
  Database db(vocab);
  db.AddOrder("u", OrderRel::kLt, "v");
  db.AddOrder("v", OrderRel::kLe, "w");
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  EXPECT_TRUE(db.AddFact("P", {"w"}).ok());
  EXPECT_TRUE(db.AddFact("Q", {"v"}).ok());
  EXPECT_TRUE(db.AddFact("IC", {"u", "w", "A"}).ok());
  EXPECT_TRUE(db.AddFact("Owns", {"A", "B"}).ok());
  db.AddNotEqual("u", "w");
  return db;
}

uint32_t U32At(const std::string& bytes, size_t offset) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) |
            static_cast<unsigned char>(bytes[offset + static_cast<size_t>(i)]);
  }
  return value;
}

uint64_t U64At(const std::string& bytes, size_t offset) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) |
            static_cast<unsigned char>(bytes[offset + static_cast<size_t>(i)]);
  }
  return value;
}

void PutU32(std::string* bytes, size_t offset, uint32_t value) {
  for (size_t i = 0; i < 4; ++i) {
    (*bytes)[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

void PutU64(std::string* bytes, size_t offset, uint64_t value) {
  for (size_t i = 0; i < 8; ++i) {
    (*bytes)[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

// The statistics section's table slot and payload extent within v2
// bytes (it is the last section in both table and payload order).
struct StatsRegion {
  size_t entry_offset = 0;
  size_t payload_offset = 0;
  size_t payload_size = 0;
};

StatsRegion FindStatsRegion(const std::string& bytes) {
  const uint32_t count = U32At(bytes, kCountOffset);
  StatsRegion region;
  for (uint32_t i = 0; i < count; ++i) {
    const size_t entry = kHeaderBytes + i * kEntryBytes;
    if (U32At(bytes, entry) == kStatisticsSectionId) {
      region.entry_offset = entry;
      region.payload_offset = static_cast<size_t>(U64At(bytes, entry + 8));
      region.payload_size = static_cast<size_t>(U64At(bytes, entry + 16));
    }
  }
  EXPECT_GT(region.entry_offset, 0u);
  EXPECT_EQ(region.payload_offset + region.payload_size, bytes.size());
  return region;
}

// Strips the statistics section out of v2 bytes, producing exactly the
// file the v1 encoder wrote: version 1, six table entries, payload
// offsets shifted by the removed table slot.
std::string StripToV1(const std::string& v2) {
  const uint32_t count = U32At(v2, kCountOffset);
  EXPECT_EQ(count, 7u);
  const StatsRegion stats = FindStatsRegion(v2);

  std::string v1 = v2.substr(0, kHeaderBytes);
  PutU32(&v1, kVersionOffset, 1);
  PutU32(&v1, kCountOffset, count - 1);
  std::string table =
      v2.substr(kHeaderBytes, (count - 1) * kEntryBytes);
  for (uint32_t i = 0; i + 1 < count; ++i) {
    const size_t entry = i * kEntryBytes;
    PutU64(&table, entry + 8, U64At(table, entry + 8) - kEntryBytes);
  }
  PutU64(&v1, kTableChecksumOffset, storage::Fnv1a64(table));
  v1 += table;
  v1 += v2.substr(kHeaderBytes + count * kEntryBytes,
                  stats.payload_offset -
                      (kHeaderBytes + count * kEntryBytes));
  return v1;
}

// Replaces the statistics payload in v2 bytes (same length) and fixes
// the section and table checksums, so only the payload CONTENT is bad.
std::string ReplaceStatsPayload(const std::string& v2,
                                const std::string& payload) {
  const StatsRegion stats = FindStatsRegion(v2);
  EXPECT_EQ(payload.size(), stats.payload_size);
  std::string out = v2;
  out.replace(stats.payload_offset, stats.payload_size, payload);
  PutU64(&out, stats.entry_offset + 24, storage::Fnv1a64(payload));
  const uint32_t count = U32At(out, kCountOffset);
  PutU64(&out, kTableChecksumOffset,
         storage::Fnv1a64(std::string_view(out).substr(
             kHeaderBytes, count * kEntryBytes)));
  return out;
}

TEST(SnapshotCompat, V1OpensWithLazilyRebuiltStats) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string v1 = StripToV1(storage::EncodeSnapshot(db));

  Result<storage::SnapshotInfo> info = storage::InspectSnapshot(v1);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().format_version, 1u);
  EXPECT_EQ(info.value().sections.size(), 6u);
  EXPECT_FALSE(info.value().has_statistics);
  EXPECT_NE(info.value().ToString().find(
                "absent (pre-v2 snapshot; rebuilt on open)"),
            std::string::npos);

  Result<Database> restored = storage::DecodeSnapshot(v1);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().uid(), db.uid());
  EXPECT_FALSE(stats::StatsArePersisted(restored.value()));
  // The lazy rebuild measures the same content.
  std::shared_ptr<const stats::DatabaseStats> rebuilt =
      stats::StatsFor(restored.value());
  EXPECT_EQ(rebuilt->ContentFingerprint(),
            stats::StatsFor(db)->ContentFingerprint());
}

TEST(SnapshotCompat, V1ReEncodesToByteStableV2) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string v2 = storage::EncodeSnapshot(db);
  const std::string v1 = StripToV1(v2);

  // Upgrading is decode + encode; rebuilt statistics are a pure function
  // of content + identity, so the result is the v2 encoding, exactly.
  Result<Database> from_v1 = storage::DecodeSnapshot(v1);
  ASSERT_TRUE(from_v1.ok());
  const std::string upgraded = storage::EncodeSnapshot(from_v1.value());
  EXPECT_EQ(upgraded, v2);

  // And from there the encoding is a fixed point.
  Result<Database> again = storage::DecodeSnapshot(upgraded);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(stats::StatsArePersisted(again.value()));
  EXPECT_EQ(storage::EncodeSnapshot(again.value()), upgraded);
}

TEST(SnapshotCompat, CorruptionSweepOverStatisticsSection) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string v2 = storage::EncodeSnapshot(db);
  const StatsRegion stats = FindStatsRegion(v2);

  // Every single-byte flip in the statistics payload or its table slot
  // must come back as a Status (checksum or header validation).
  for (size_t offset = stats.payload_offset; offset < v2.size(); ++offset) {
    std::string patched = v2;
    patched[offset] = static_cast<char>(patched[offset] ^ 0x5A);
    EXPECT_FALSE(storage::DecodeSnapshot(patched).ok())
        << "payload flip at " << offset << " accepted";
  }
  for (size_t i = 0; i < kEntryBytes; ++i) {
    std::string patched = v2;
    patched[stats.entry_offset + i] =
        static_cast<char>(patched[stats.entry_offset + i] ^ 0x5A);
    EXPECT_FALSE(storage::DecodeSnapshot(patched).ok())
        << "table flip at " << i << " accepted";
  }
}

TEST(SnapshotCompat, MalformedStatsPayloadUnderValidChecksumIsCorrupt) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string v2 = storage::EncodeSnapshot(db);
  const StatsRegion stats = FindStatsRegion(v2);

  // Same length, garbage content, checksums fixed up: the statistics
  // DECODER must reject it — corruption may not masquerade as "no
  // statistics".
  const std::string garbage(stats.payload_size, '\x77');
  Result<Database> restored =
      storage::DecodeSnapshot(ReplaceStatsPayload(v2, garbage));
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("statistics"),
            std::string::npos);
}

TEST(SnapshotCompat, StaleIdentityStatsAreDroppedNotFatal) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string v2 = storage::EncodeSnapshot(db);

  // A well-formed statistics section describing another revision (e.g.
  // a hand-edited or mis-assembled file): advisory data, so the open
  // succeeds and the stats are rebuilt instead of trusted.
  stats::DatabaseStats stale = *stats::StatsFor(db);
  stale.db_revision += 1;
  const std::string patched =
      ReplaceStatsPayload(v2, stats::EncodeStats(stale));

  Result<storage::SnapshotInfo> info = storage::InspectSnapshot(patched);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().has_statistics);
  EXPECT_FALSE(info.value().statistics_fresh);
  EXPECT_NE(info.value().ToString().find("STALE"), std::string::npos);

  Result<Database> restored = storage::DecodeSnapshot(patched);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(stats::StatsArePersisted(restored.value()));
  EXPECT_EQ(stats::StatsFor(restored.value())->db_revision,
            restored.value().revision());
}

// A committed pre-statistics fixture: the exact bytes a v1 build wrote
// for the mixed database above (identity uid=FIXTURE, revision as
// encoded). Pins the v1 reader against drift that round-trip synthesis
// cannot catch.
constexpr char kV1FixtureHex[] =
    "494f4442534e4150010000004d3c2b1a060000005fb513380ef8e58c01000000000000"
    "00dc000000000000003b00000000000000e9a5edeb990751bd02000000000000001701"
    "0000000000002100000000000000ba9daa116b6489d503000000000000003801000000"
    "0000005400000000000000436aa73cb394d47a04000000000000008c01000000000000"
    "1a00000000000000203c208f095362d20500000000000000a601000000000000100000"
    "000000000046c555fa016217790600000000000000b601000000000000100000000000"
    "0000c9be96841eed07d401000000000000000400000001000000500100000001010000"
    "0051010000000102000000494303000000010100040000004f776e7302000000000002"
    "0000000100000041010000004203000000010000007501000000760100000077040000"
    "0001000000020000000000000000000000020000000100000001000000000000000100"
    "0000030000000100000000000000000000000200000000000000020000000100000000"
    "0000000000000001000000020000000000000000000000010000000001000000020000"
    "00010100000000000000000000000200000001000000000000000d00000000000000";

std::string FromHex(std::string_view hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) {
    return c <= '9' ? c - '0' : c - 'a' + 10;
  };
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) |
                                    nibble(hex[i + 1])));
  }
  return out;
}

TEST(SnapshotCompat, CommittedV1FixtureStillOpens) {
  const std::string bytes = FromHex(kV1FixtureHex);
  Result<storage::SnapshotInfo> info = storage::InspectSnapshot(bytes);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().format_version, 1u);
  EXPECT_FALSE(info.value().has_statistics);

  Result<Database> restored = storage::DecodeSnapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().proper_atoms().size(), 5u);
  EXPECT_EQ(restored.value().order_atoms().size(), 2u);
  EXPECT_FALSE(stats::StatsArePersisted(restored.value()));

  // Opening and re-saving upgrades the fixture to v2 with a persisted
  // statistics section, and v2 is a byte-stable fixed point.
  const std::string upgraded = storage::EncodeSnapshot(restored.value());
  Result<storage::SnapshotInfo> upgraded_info =
      storage::InspectSnapshot(upgraded);
  ASSERT_TRUE(upgraded_info.ok());
  EXPECT_EQ(upgraded_info.value().format_version, 2u);
  EXPECT_TRUE(upgraded_info.value().has_statistics);
  Result<Database> reopened = storage::DecodeSnapshot(upgraded);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(storage::EncodeSnapshot(reopened.value()), upgraded);
}

}  // namespace
}  // namespace iodb
