// Unit tests for the binary snapshot format (storage/snapshot.h): the
// codec's explicit little-endian layout, full round trips over mixed
// databases, identity restoration, vocabulary remapping, the vocabulary
// sidecar, and — because every byte of a snapshot is covered by a
// checksum or a validated header field — exhaustive single-byte
// corruption and truncation sweeps that must always come back as a
// Status, never a crash.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/parser.h"
#include "core/printer.h"
#include "storage/codec.h"

namespace iodb {
namespace {

// A database exercising every section: monadic order facts, an n-ary
// mixed-sort predicate, object constants, both order relations, and an
// inequality.
Database MixedDatabase(VocabularyPtr vocab) {
  Database db(vocab);
  // Orders first, so u/v/w are interned as order constants before the
  // facts that mention them infer their sorts.
  db.AddOrder("u", OrderRel::kLt, "v");
  db.AddOrder("v", OrderRel::kLe, "w");
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  EXPECT_TRUE(db.AddFact("P", {"w"}).ok());
  EXPECT_TRUE(db.AddFact("Q", {"v"}).ok());
  EXPECT_TRUE(db.AddFact("IC", {"u", "w", "A"}).ok());
  EXPECT_TRUE(db.AddFact("Owns", {"A", "B"}).ok());
  db.AddNotEqual("u", "w");
  return db;
}

// Renders every proper atom as "P(name, ...)" and sorts, so fact sets
// compare across databases with different interning orders or
// vocabulary ids.
std::vector<std::string> FactNames(const Database& db) {
  std::vector<std::string> out;
  for (const ProperAtom& atom : db.proper_atoms()) {
    std::string fact = db.vocab()->predicate(atom.pred).name + "(";
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) fact += ", ";
      fact += atom.args[i].sort == Sort::kObject
                  ? db.object_name(atom.args[i].id)
                  : db.order_name(atom.args[i].id);
    }
    fact += ")";
    out.push_back(std::move(fact));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SnapshotCodec, LittleEndianByteLayout) {
  // The on-disk encoding is little-endian by explicit byte arithmetic;
  // these assertions hold on any host, which is the point.
  std::string bytes;
  storage::AppendU32(&bytes, 0x01020304u);
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);

  bytes.clear();
  storage::AppendU64(&bytes, 0x0102030405060708ull);
  ASSERT_EQ(bytes.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[static_cast<size_t>(i)]),
              8 - i);
  }

  storage::ByteReader reader(bytes);
  uint64_t decoded = 0;
  ASSERT_TRUE(reader.ReadU64(&decoded).ok());
  EXPECT_EQ(decoded, 0x0102030405060708ull);
}

TEST(SnapshotCodec, Fnv1a64KnownVectors) {
  EXPECT_EQ(storage::Fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(storage::Fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(storage::Fnv1a64("foobar"), 0x85944171F73967E8ull);
}

TEST(SnapshotCodec, ByteReaderNeverReadsPastEnd) {
  std::string bytes = "abc";
  storage::ByteReader reader(bytes);
  uint32_t value = 0;
  EXPECT_FALSE(reader.ReadU32(&value).ok());
  std::string text;
  storage::ByteReader reader2(bytes);
  EXPECT_FALSE(reader2.ReadString(&text).ok());
}

TEST(Snapshot, RoundTripMixedDatabase) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string bytes = storage::EncodeSnapshot(db);

  Result<Database> restored = storage::DecodeSnapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Database& db2 = restored.value();

  // Identity survives.
  EXPECT_EQ(db2.uid(), db.uid());
  EXPECT_EQ(db2.revision(), db.revision());
  EXPECT_EQ(db2.vocab()->uid(), vocab->uid());

  // Symbol tables survive exactly (ids and names).
  ASSERT_EQ(db2.num_object_constants(), db.num_object_constants());
  for (int i = 0; i < db.num_object_constants(); ++i) {
    EXPECT_EQ(db2.object_name(i), db.object_name(i));
  }
  ASSERT_EQ(db2.num_order_constants(), db.num_order_constants());
  for (int i = 0; i < db.num_order_constants(); ++i) {
    EXPECT_EQ(db2.order_name(i), db.order_name(i));
  }
  ASSERT_EQ(db2.vocab()->num_predicates(), vocab->num_predicates());
  for (int p = 0; p < vocab->num_predicates(); ++p) {
    EXPECT_EQ(db2.vocab()->predicate(p).name, vocab->predicate(p).name);
    EXPECT_EQ(db2.vocab()->predicate(p).arg_sorts,
              vocab->predicate(p).arg_sorts);
  }

  // Content survives (facts compared as a set: decoding re-buckets by
  // predicate; order atoms and inequalities keep their exact order).
  EXPECT_EQ(FactNames(db2), FactNames(db));
  EXPECT_EQ(db2.order_atoms(), db.order_atoms());
  EXPECT_EQ(db2.inequalities(), db.inequalities());

  // Re-serialization is byte-stable.
  EXPECT_EQ(storage::EncodeSnapshot(db2), bytes);

  // The normalized views agree.
  Result<const NormDb*> norm1 = db.NormView();
  Result<const NormDb*> norm2 = db2.NormView();
  ASSERT_TRUE(norm1.ok());
  ASSERT_TRUE(norm2.ok());
  EXPECT_EQ(DotOfDb(*norm2.value()), DotOfDb(*norm1.value()));
}

TEST(Snapshot, RoundTripEmptyDatabase) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  const std::string bytes = storage::EncodeSnapshot(db);
  Result<Database> restored = storage::DecodeSnapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().SizeAtoms(), 0);
  EXPECT_EQ(restored.value().uid(), db.uid());
  EXPECT_EQ(storage::EncodeSnapshot(restored.value()), bytes);
}

TEST(Snapshot, DecodeIntoSharedVocabularyRemapsPredicates) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string bytes = storage::EncodeSnapshot(db);

  // The shared vocabulary already has predicates at the low ids, so the
  // persisted ids must be remapped by name.
  auto shared = std::make_shared<Vocabulary>();
  shared->MustAddPredicate("Zeta", {Sort::kOrder});
  shared->MustAddPredicate("Q", {Sort::kOrder});
  const uint64_t shared_uid = shared->uid();

  Result<Database> restored = storage::DecodeSnapshotInto(bytes, shared);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().vocab().get(), shared.get());
  // The shared vocabulary keeps its own identity.
  EXPECT_EQ(shared->uid(), shared_uid);
  // Same facts by name, same database identity.
  EXPECT_EQ(FactNames(restored.value()), FactNames(db));
  EXPECT_EQ(restored.value().uid(), db.uid());
  EXPECT_EQ(restored.value().revision(), db.revision());
}

TEST(Snapshot, DecodeIntoVocabularyWithSignatureClashFails) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string bytes = storage::EncodeSnapshot(db);

  auto shared = std::make_shared<Vocabulary>();
  shared->MustAddPredicate("P", {Sort::kObject, Sort::kObject});
  Result<Database> restored = storage::DecodeSnapshotInto(bytes, shared);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("clashes"), std::string::npos);
}

TEST(Snapshot, RestoredUidAdvancesTheCounter) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string bytes = storage::EncodeSnapshot(db);
  Result<Database> restored = storage::DecodeSnapshot(bytes);
  ASSERT_TRUE(restored.ok());
  // A database constructed after the restore must get a fresh uid above
  // the restored one — identities never collide.
  Database fresh(vocab);
  EXPECT_GT(fresh.uid(), restored.value().uid());
}

TEST(Snapshot, InspectReportsCountsAndSections) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string bytes = storage::EncodeSnapshot(db);
  Result<storage::SnapshotInfo> info = storage::InspectSnapshot(bytes);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().format_version, storage::kSnapshotFormatVersion);
  EXPECT_EQ(info.value().db_uid, db.uid());
  EXPECT_EQ(info.value().revision, db.revision());
  EXPECT_EQ(info.value().num_predicates, 4u);
  EXPECT_EQ(info.value().num_object_constants, 2u);
  EXPECT_EQ(info.value().num_order_constants, 3u);
  EXPECT_EQ(info.value().num_proper_atoms, 5u);
  EXPECT_EQ(info.value().num_order_atoms, 2u);
  EXPECT_EQ(info.value().num_inequalities, 1u);
  EXPECT_EQ(info.value().file_bytes, bytes.size());
  EXPECT_EQ(info.value().sections.size(), 7u);
  EXPECT_TRUE(info.value().has_statistics);
  EXPECT_TRUE(info.value().statistics_fresh);
  const std::string rendered = info.value().ToString();
  EXPECT_NE(rendered.find("section fact-segments"), std::string::npos);
  EXPECT_NE(rendered.find("statistics            persisted (fresh)"),
            std::string::npos);
  EXPECT_NE(rendered.find("order-graph"), std::string::npos);
}

TEST(Snapshot, EverySingleByteCorruptionIsDetected) {
  // Every byte of the file is covered by a checksum or a validated
  // header field, so ANY single-byte corruption must surface as an
  // error — silent acceptance would be data corruption.
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string bytes = storage::EncodeSnapshot(db);
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    Result<Database> restored = storage::DecodeSnapshot(corrupt);
    EXPECT_FALSE(restored.ok()) << "flip at byte " << i << " was accepted";
  }
}

TEST(Snapshot, EveryTruncationIsAnErrorNotACrash) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string bytes = storage::EncodeSnapshot(db);
  for (size_t length = 0; length < bytes.size(); ++length) {
    Result<Database> restored =
        storage::DecodeSnapshot(std::string_view(bytes.data(), length));
    EXPECT_FALSE(restored.ok()) << "prefix of " << length << " accepted";
  }
}

TEST(Snapshot, RejectsOtherFormatVersions) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  std::string bytes = storage::EncodeSnapshot(db);
  for (uint8_t version : {0, 3}) {  // below and above the known range
    std::string patched = bytes;
    patched[8] = static_cast<char>(version);  // follows the 8-byte magic
    Result<Database> restored = storage::DecodeSnapshot(patched);
    ASSERT_FALSE(restored.ok());
    EXPECT_NE(restored.status().message().find("version"),
              std::string::npos);
  }
}

TEST(Snapshot, RejectsForeignBytes) {
  EXPECT_FALSE(storage::DecodeSnapshot("not a snapshot at all").ok());
  EXPECT_FALSE(storage::InspectSnapshot("").ok());
}

TEST(VocabularyFile, RoundTripRestoresIdsAndUid) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("IC", {Sort::kOrder, Sort::kOrder, Sort::kObject});
  const std::string path = testing::TempDir() + "/vocab_roundtrip.iodb";
  ASSERT_TRUE(storage::SaveVocabulary(*vocab, path).ok());

  auto restored = std::make_shared<Vocabulary>();
  Status status = storage::RestoreVocabularyInto(path, restored.get());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(restored->uid(), vocab->uid());
  ASSERT_EQ(restored->num_predicates(), 2);
  EXPECT_EQ(restored->predicate(0).name, "P");
  EXPECT_EQ(restored->predicate(1).name, "IC");
  EXPECT_EQ(restored->predicate(1).arg_sorts,
            (std::vector<Sort>{Sort::kOrder, Sort::kOrder, Sort::kObject}));
}

TEST(VocabularyFile, RestoreIntoMismatchedVocabularyFails) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  const std::string path = testing::TempDir() + "/vocab_mismatch.iodb";
  ASSERT_TRUE(storage::SaveVocabulary(*vocab, path).ok());

  auto other = std::make_shared<Vocabulary>();
  other->MustAddPredicate("Q", {Sort::kOrder});  // occupies id 0
  Status status = storage::RestoreVocabularyInto(path, other.get());
  EXPECT_FALSE(status.ok());
}

TEST(Snapshot, ParsedDatabaseRoundTripsThroughFile) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(
      "pred IC(order, order, object)\n"
      "P(u); Q(v); IC(z1, z2, A)\n"
      "u < v <= z1\n"
      "z1 != z2\n",
      vocab);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const std::string path = testing::TempDir() + "/parsed_roundtrip.snap";
  ASSERT_TRUE(storage::SaveSnapshot(db.value(), path).ok());
  Result<Database> restored = storage::OpenSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(FactNames(restored.value()), FactNames(db.value()));
  EXPECT_EQ(restored.value().uid(), db.value().uid());
  EXPECT_EQ(restored.value().revision(), db.value().revision());
}

}  // namespace
}  // namespace iodb
