// Concurrent statistics refresh under the MVCC service (run in the TSan
// CI job): the writer pre-materializes the stats entry (and its cost
// model) on its private fork before the atomic publish — exactly the
// NormView seam — so readers of a published version never fill the
// Database stats slot concurrently. These tests hammer that seam:
// costed Eval readers racing APPEND-style mutations, plus INFO-style
// StatsArePersisted probes.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "stats/stats.h"

namespace iodb {
namespace {

TEST(StatsConcurrency, CostedReadersRaceMutations) {
  EvaluationService service;  // costing on by default
  ASSERT_TRUE(service.Load("db", "P(c0)\nQ(c1)\nc0 < c1").ok());

  constexpr int kReaders = 4;
  constexpr int kMutations = 40;
  constexpr int kReadsPerReader = 300;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, r] {
      const std::vector<std::string> queries = {
          "exists t: P(t)",
          "exists t1 t2: P(t1) & t1 < t2 & Q(t2)",
          "exists t: P(t) & Q(t)",
      };
      for (int i = 0; i < kReadsPerReader; ++i) {
        EvalRequest request;
        request.db = "db";
        request.query = queries[static_cast<size_t>(i + r) % queries.size()];
        // Mix costed and uncosted requests so both plan-cache keys and
        // both planner paths run against every published version.
        request.costing = (i + r) % 3 == 0 ? 0 : 1;
        Result<EvalResponse> response = service.Eval(request);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        ASSERT_FALSE(response.value().plan_summary.empty());
      }
    });
  }

  // One writer (the service's publish path is single-writer anyway):
  // every mutation grows the chain and the P facts, changing statistics
  // magnitudes under the racing readers.
  std::thread writer([&service, &done] {
    for (int m = 0; m < kMutations; ++m) {
      const std::string prev = "c" + std::to_string(m + 1);
      const std::string next = "c" + std::to_string(m + 2);
      Result<DbInfo> info = service.Mutate("db", [&](Database* db) {
        db->AddOrder(prev, OrderRel::kLt, next);
        return db->AddFact("P", {next});
      });
      ASSERT_TRUE(info.ok()) << info.status().ToString();
    }
    done.store(true);
  });

  // INFO-style probes of the published version's stats slot, racing the
  // readers and the publishes.
  std::thread prober([&service, &done] {
    while (!done.load()) {
      EvaluationService::DatabasePtr db = service.Snapshot("db");
      ASSERT_NE(db, nullptr);
      // The publish seam pre-materialized the slot, so reading it never
      // writes; persisted-ness is always reportable.
      (void)stats::StatsArePersisted(*db);
      std::shared_ptr<const stats::DatabaseStats> s = stats::StatsFor(*db);
      ASSERT_EQ(s->db_revision, db->revision());
    }
  });

  for (std::thread& reader : readers) reader.join();
  writer.join();
  prober.join();

  // The final version reflects every mutation.
  EvaluationService::DatabasePtr db = service.Snapshot("db");
  ASSERT_NE(db, nullptr);
  std::shared_ptr<const stats::DatabaseStats> s = stats::StatsFor(*db);
  EXPECT_EQ(s->order_atoms, 1 + kMutations);
  EXPECT_TRUE(s->order_stats_valid);
}

TEST(StatsConcurrency, PublishedVersionsHavePreMaterializedStats) {
  EvaluationService service;
  ASSERT_TRUE(service.Load("db", "P(a)\na < b").ok());

  // Snapshot a version and mutate past it: the retired version's stats
  // entry must stay valid for holders while the new version gets its
  // own, and reading the OLD version's stats is a pure read.
  EvaluationService::DatabasePtr old_version = service.Snapshot("db");
  ASSERT_NE(old_version, nullptr);
  std::shared_ptr<const stats::DatabaseStats> old_stats =
      stats::StatsFor(*old_version);

  ASSERT_TRUE(service
                  .Mutate("db",
                          [](Database* db) {
                            db->AddOrder("b", OrderRel::kLt, "c");
                            return db->AddFact("P", {"c"});
                          })
                  .ok());

  EvaluationService::DatabasePtr new_version = service.Snapshot("db");
  ASSERT_NE(new_version, nullptr);
  std::shared_ptr<const stats::DatabaseStats> new_stats =
      stats::StatsFor(*new_version);

  EXPECT_EQ(old_stats->proper_atoms + 1, new_stats->proper_atoms);
  EXPECT_EQ(old_stats->order_atoms + 1, new_stats->order_atoms);
  // The old holder's stats are untouched by the publish.
  EXPECT_EQ(stats::StatsFor(*old_version).get(), old_stats.get());
}

}  // namespace
}  // namespace iodb
