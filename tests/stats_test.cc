// Unit tests for the statistics subsystem (src/stats): collection
// correctness on known databases, the byte codec (lossless round trip,
// corruption rejection), content fingerprints, rendering, and the
// memoized access path through the Database stats slot (staleness on
// mutation, persisted-vs-rebuilt marking, identity checks on install).

#include "stats/stats.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "stats/cost_model.h"
#include "storage/codec.h"

namespace iodb {
namespace {

using stats::CollectStats;
using stats::DatabaseStats;
using stats::DecodeStats;
using stats::EncodeStats;
using stats::PredicateStats;
using stats::RenderStats;

// The snapshot-test mixed database: monadic order facts, an n-ary
// mixed-sort predicate, object constants, both order relations, and an
// inequality — every collection dimension is nonzero.
Database MixedDatabase(VocabularyPtr vocab) {
  Database db(vocab);
  db.AddOrder("u", OrderRel::kLt, "v");
  db.AddOrder("v", OrderRel::kLe, "w");
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  EXPECT_TRUE(db.AddFact("P", {"w"}).ok());
  EXPECT_TRUE(db.AddFact("Q", {"v"}).ok());
  EXPECT_TRUE(db.AddFact("IC", {"u", "w", "A"}).ok());
  EXPECT_TRUE(db.AddFact("Owns", {"A", "B"}).ok());
  db.AddNotEqual("u", "w");
  return db;
}

const PredicateStats* FindPred(const DatabaseStats& s, const Database& db,
                               const std::string& name) {
  for (const PredicateStats& ps : s.predicates) {
    if (db.vocab()->predicate(ps.pred).name == name) return &ps;
  }
  return nullptr;
}

TEST(StatsCollect, FactLevelCounts) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  DatabaseStats s = CollectStats(db);

  EXPECT_EQ(s.db_uid, db.uid());
  EXPECT_EQ(s.db_revision, db.revision());
  EXPECT_EQ(s.proper_atoms, 5);
  EXPECT_EQ(s.order_atoms, 2);
  EXPECT_EQ(s.inequality_atoms, 1);
  EXPECT_EQ(s.object_constants, 2);  // A, B
  EXPECT_EQ(s.order_constants, 3);   // u, v, w

  // Per-predicate cardinalities with distinct-argument counts; only
  // predicates that actually carry facts appear.
  ASSERT_EQ(s.predicates.size(), 4u);
  const PredicateStats* p = FindPred(s, db, "P");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->tuples, 2);
  EXPECT_EQ(p->distinct_args, (std::vector<long long>{2}));
  const PredicateStats* ic = FindPred(s, db, "IC");
  ASSERT_NE(ic, nullptr);
  EXPECT_EQ(ic->tuples, 1);
  EXPECT_EQ(ic->distinct_args, (std::vector<long long>{1, 1, 1}));
  // Ascending by predicate id (the codec and fingerprint rely on it).
  for (size_t i = 1; i < s.predicates.size(); ++i) {
    EXPECT_LT(s.predicates[i - 1].pred, s.predicates[i].pred);
  }
}

TEST(StatsCollect, OrderGraphShape) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  DatabaseStats s = CollectStats(db);

  ASSERT_TRUE(s.order_stats_valid);
  EXPECT_EQ(s.points, 3);
  EXPECT_EQ(s.edges, 2);
  EXPECT_EQ(s.strict_edges, 1);  // u < v strict, v <= w weak
  EXPECT_EQ(s.dag_depth, 3);     // u -> v -> w is a 3-vertex chain
  EXPECT_EQ(s.level_width, 1);
  EXPECT_EQ(s.components, 1);
  // One component of size 3: log2 bucket 1 ([2, 4)).
  EXPECT_EQ(s.component_log2_histogram,
            (std::vector<long long>{0, 1}));

  // Labels: P on u and w, Q on v; u carries only P and v only Q, so the
  // pair sketch is empty (and, being complete, that emptiness is exact).
  ASSERT_EQ(s.label_points.size(), 2u);
  EXPECT_EQ(s.label_points[0].second + s.label_points[1].second, 3);
  EXPECT_TRUE(s.label_pairs.empty());
}

TEST(StatsCollect, LabelPairSketchCountsCoOccurrence) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  db.AddOrder("a", OrderRel::kLt, "b");
  ASSERT_TRUE(db.AddFact("P", {"a"}).ok());
  ASSERT_TRUE(db.AddFact("Q", {"a"}).ok());
  ASSERT_TRUE(db.AddFact("P", {"b"}).ok());
  DatabaseStats s = CollectStats(db);
  ASSERT_TRUE(s.order_stats_valid);
  // Exactly one point (a) carries both P and Q.
  ASSERT_EQ(s.label_pairs.size(), 1u);
  EXPECT_EQ(s.label_pairs[0].points, 1);
  EXPECT_LT(s.label_pairs[0].p, s.label_pairs[0].q);
}

TEST(StatsCollect, InconsistentDatabaseKeepsFactStatsOnly) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  db.AddOrder("a", OrderRel::kLt, "b");
  db.AddOrder("b", OrderRel::kLt, "a");  // strict cycle: inconsistent
  ASSERT_TRUE(db.AddFact("P", {"a"}).ok());
  DatabaseStats s = CollectStats(db);
  EXPECT_EQ(s.proper_atoms, 1);
  EXPECT_EQ(s.order_atoms, 2);
  EXPECT_FALSE(s.order_stats_valid);
  EXPECT_EQ(s.points, 0);
  EXPECT_TRUE(s.label_points.empty());
  // Rendering says so instead of printing untrustworthy zeros.
  EXPECT_NE(RenderStats(s).find("order-graph"), std::string::npos);
  EXPECT_NE(RenderStats(s).find("invalid (inconsistent database)"),
            std::string::npos);
}

TEST(StatsCollect, DeterministicOnEqualContent) {
  auto vocab = std::make_shared<Vocabulary>();
  Database a = MixedDatabase(vocab);
  Database b = MixedDatabase(vocab);
  DatabaseStats sa = CollectStats(a);
  DatabaseStats sb = CollectStats(b);
  // Identities differ (fresh uids), content statistics do not.
  EXPECT_NE(sa.db_uid, sb.db_uid);
  sa.db_uid = sb.db_uid = 0;
  sa.db_revision = sb.db_revision = 0;
  EXPECT_EQ(sa, sb);
}

TEST(StatsCodec, RoundTripIsLossless) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  DatabaseStats s = CollectStats(db);

  const std::string bytes = EncodeStats(s);
  Result<DatabaseStats> decoded = DecodeStats(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), s);
  // Encode ∘ Decode ∘ Encode is the identity on bytes — the property
  // snapshot byte-stability rests on.
  EXPECT_EQ(EncodeStats(decoded.value()), bytes);
}

TEST(StatsCodec, RejectsTruncationAtEveryLength) {
  auto vocab = std::make_shared<Vocabulary>();
  DatabaseStats s = CollectStats(MixedDatabase(vocab));
  const std::string bytes = EncodeStats(s);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<DatabaseStats> decoded =
        DecodeStats(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncation to " << len << " accepted";
  }
}

TEST(StatsCodec, RejectsUnknownVersionAndTrailingBytes) {
  auto vocab = std::make_shared<Vocabulary>();
  DatabaseStats s = CollectStats(MixedDatabase(vocab));
  std::string bytes = EncodeStats(s);

  std::string wrong_version = bytes;
  wrong_version[0] = 99;
  EXPECT_FALSE(DecodeStats(wrong_version).ok());

  std::string trailing = bytes + "x";
  EXPECT_FALSE(DecodeStats(trailing).ok());
}

TEST(StatsCodec, RejectsInflatedCounts) {
  // A corrupt count field must fail fast, not reserve gigabytes. The
  // predicate count is the u32 right after the fixed prefix:
  // [version u8][uid u64][rev u64][3 x u64][2 x u32].
  auto vocab = std::make_shared<Vocabulary>();
  DatabaseStats s = CollectStats(MixedDatabase(vocab));
  std::string bytes = EncodeStats(s);
  const size_t count_offset = 1 + 8 + 8 + 3 * 8 + 2 * 4;
  std::string corrupt = bytes.substr(0, count_offset);
  storage::AppendU32(&corrupt, 0x7FFFFFFFu);
  corrupt += bytes.substr(count_offset + 4);
  EXPECT_FALSE(DecodeStats(corrupt).ok());
}

TEST(StatsFingerprint, IgnoresIdentityTracksContent) {
  auto vocab = std::make_shared<Vocabulary>();
  DatabaseStats a = CollectStats(MixedDatabase(vocab));
  DatabaseStats b = a;
  b.db_uid ^= 0xDEAD;
  b.db_revision += 7;
  EXPECT_EQ(a.ContentFingerprint(), b.ContentFingerprint());
  b.proper_atoms += 1;
  EXPECT_NE(a.ContentFingerprint(), b.ContentFingerprint());
}

TEST(StatsRender, MentionsEveryDimension) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  const std::string text = RenderStats(CollectStats(db));
  for (const char* needle :
       {"stats-revision", "fact-atoms", "proper=5 order=2 neq=1",
        "constants", "object=2 order=3", "order-graph",
        "points=3 edges=2 strict=1", "dag-shape",
        "depth=3 level-width=1 components=1", "label #"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n" << text;
  }
}

// --- memoized access through the Database stats slot ---------------------

TEST(StatsMemo, StatsForMemoizesUntilMutation) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);

  std::shared_ptr<const DatabaseStats> first = stats::StatsFor(db);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->db_revision, db.revision());
  // Fresh entry: the exact same object comes back, no recompute.
  EXPECT_EQ(stats::StatsFor(db).get(), first.get());
  EXPECT_FALSE(stats::StatsArePersisted(db));

  // A mutation bumps the revision; the memo detects staleness and the
  // recomputed stats see the new fact.
  ASSERT_TRUE(db.AddFact("P", {"v"}).ok());
  std::shared_ptr<const DatabaseStats> second = stats::StatsFor(db);
  EXPECT_NE(second.get(), first.get());
  EXPECT_EQ(second->db_revision, db.revision());
  EXPECT_EQ(second->proper_atoms, first->proper_atoms + 1);
  // The holder of the old entry is unaffected.
  EXPECT_EQ(first->proper_atoms, 5);
}

TEST(StatsMemo, PlannerForIsMemoizedWithTheStats) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  std::shared_ptr<const QueryPlanner> planner = stats::PlannerFor(db);
  ASSERT_NE(planner, nullptr);
  EXPECT_EQ(stats::PlannerFor(db).get(), planner.get());
  ASSERT_TRUE(db.AddFact("Q", {"w"}).ok());
  EXPECT_NE(stats::PlannerFor(db).get(), planner.get());
}

TEST(StatsMemo, InstallPersistedStatsChecksIdentity) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MixedDatabase(vocab);
  DatabaseStats s = CollectStats(db);

  // A stats block for another identity must be rejected — persisted
  // statistics are only trusted for the content they were measured on.
  DatabaseStats wrong = s;
  wrong.db_revision += 1;
  EXPECT_FALSE(stats::InstallPersistedStats(db, wrong).ok());
  EXPECT_FALSE(stats::StatsArePersisted(db));

  ASSERT_TRUE(stats::InstallPersistedStats(db, s).ok());
  EXPECT_TRUE(stats::StatsArePersisted(db));
  // StatsFor serves the installed entry verbatim.
  EXPECT_EQ(*stats::StatsFor(db), s);

  // Mutation makes the persisted entry stale: the next read rebuilds
  // and the database stops reporting persisted statistics.
  ASSERT_TRUE(db.AddFact("P", {"v"}).ok());
  EXPECT_FALSE(stats::StatsArePersisted(db));
  EXPECT_EQ(stats::StatsFor(db)->db_revision, db.revision());
  EXPECT_FALSE(stats::StatsArePersisted(db));
}

// --- cost-model fingerprint quantization ---------------------------------

TEST(CostModelFingerprint, StableWithinMagnitudeClass) {
  auto vocab = std::make_shared<Vocabulary>();
  auto base =
      std::make_shared<const DatabaseStats>(CollectStats(MixedDatabase(vocab)));

  // Same magnitudes, different identity: equal fingerprints (plan-cache
  // hits survive revision bumps that do not change any bit width).
  DatabaseStats same = *base;
  same.db_revision += 3;
  same.proper_atoms += 1;  // not part of the fingerprint at all
  stats::CostModel a(base);
  stats::CostModel b(std::make_shared<const DatabaseStats>(same));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Crossing a magnitude boundary re-keys: P goes from 2 tuples
  // (bit width 2) to 4 (bit width 3).
  DatabaseStats bigger = *base;
  for (PredicateStats& ps : bigger.predicates) {
    if (ps.tuples == 2) ps.tuples = 4;
  }
  stats::CostModel c(std::make_shared<const DatabaseStats>(bigger));
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  // The engine-route structure bits are exact, not quantized: flipping
  // the edge mix to all-strict must re-key even though no count moved.
  DatabaseStats all_strict = *base;
  all_strict.strict_edges = all_strict.edges;
  stats::CostModel d(std::make_shared<const DatabaseStats>(all_strict));
  EXPECT_NE(a.fingerprint(), d.fingerprint());
}

}  // namespace
}  // namespace iodb
