// Raw-I/O helper tests (storage/io.h): the EINTR/short-write resume
// loops that every storage syscall site routes through. The
// "io-short-write" failpoint forces WriteFull to issue one-byte chunks,
// proving the resume loop actually runs (and that the WAL and snapshot
// writers survive arbitrarily short writes); a SIGALRM storm with a
// no-SA_RESTART handler drives the EINTR paths for real.

#include "storage/io.h"

#include <fcntl.h>
#include <sys/time.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/failpoint.h"

namespace iodb {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  Result<int> fd = storage::OpenFd(path, O_RDONLY | O_CLOEXEC, 0, "slurp");
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  std::string out;
  Status status = storage::ReadFull(fd.value(), &out, "slurp");
  EXPECT_TRUE(status.ok()) << status.ToString();
  ::close(fd.value());
  return out;
}

TEST(StorageIoTest, WriteFullWritesEverythingAndReadFullReadsItBack) {
  const std::string path = TestPath("io_roundtrip.bin");
  std::string payload;
  for (int i = 0; i < 100000; ++i) payload += static_cast<char>(i % 251);

  Result<int> fd = storage::OpenFd(
      path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644, "test file");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(storage::WriteFull(fd.value(), payload, "test file").ok());
  ASSERT_TRUE(storage::FsyncFd(fd.value(), "test file").ok());
  ::close(fd.value());

  EXPECT_EQ(Slurp(path), payload);
}

TEST(StorageIoTest, WriteFullReportsRealErrors) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);  // no reader: writing is EPIPE
  ::signal(SIGPIPE, SIG_IGN);
  Status status = storage::WriteFull(fds[1], "doomed", "closed pipe");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("closed pipe"), std::string::npos);
  ::close(fds[1]);
}

// The failpoint proof of the short-write resume loop: armed, every
// write() chunk is capped at one byte, so the loop must run once per
// byte for the payload to arrive intact. Hits() counts the chunks.
TEST(StorageIoTest, ShortWriteFailpointForcesTheResumeLoop) {
  failpoint::DisarmAll();
  const std::string path = TestPath("io_short.bin");
  std::string payload;
  for (int i = 0; i < 600; ++i) payload += static_cast<char>('a' + i % 26);

  {
    failpoint::Scoped fp("io-short-write", failpoint::Action::kError);
    Result<int> fd = storage::OpenFd(
        path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644, "short file");
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    ASSERT_TRUE(storage::WriteFull(fd.value(), payload, "short file").ok());
    ::close(fd.value());
  }

  EXPECT_EQ(Slurp(path), payload);
  // One Check() per chunk; one-byte chunks mean at least payload-size
  // iterations — the loop provably resumed after every short write.
  EXPECT_GE(failpoint::Hits("io-short-write"),
            static_cast<long long>(payload.size()));
  failpoint::DisarmAll();
}

// The WAL append path survives arbitrarily short writes: the group is
// intact and replayable even when the kernel (here: the failpoint)
// accepts one byte per write().
TEST(StorageIoTest, WalGroupSurvivesShortWrites) {
  failpoint::DisarmAll();
  const std::string path = TestPath("io_short.wal");
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  const uint64_t base_uid = db.uid();
  const uint64_t base_revision = db.revision();
  ASSERT_TRUE(storage::CreateWal(path, base_uid, base_revision).ok());

  Result<std::vector<storage::WalRecord>> records =
      storage::ParseMutationText("P(u)\nQ(v)\nu < v", vocab);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  {
    failpoint::Scoped fp("io-short-write", failpoint::Action::kError);
    ASSERT_TRUE(storage::AppendWalGroup(path, records.value(), true).ok());
  }

  Result<storage::WalReplayStats> replay =
      storage::ReplayWal(path, base_uid, base_revision, &db);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay.value().groups_applied, 1);
  EXPECT_FALSE(replay.value().truncated_tail);
  EXPECT_EQ(db.SizeAtoms(), 3);
  failpoint::DisarmAll();
}

// Snapshot writes (WriteFileAtomic under the hood) survive short writes
// byte-for-byte.
TEST(StorageIoTest, AtomicFileWriteSurvivesShortWrites) {
  failpoint::DisarmAll();
  const std::string path = TestPath("io_short.snap");
  std::string payload = "snapshot-ish payload \x01\x02\x03 with binary";
  {
    failpoint::Scoped fp("io-short-write", failpoint::Action::kError);
    ASSERT_TRUE(storage::WriteFileAtomic(path, payload).ok());
  }
  Result<std::string> bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(bytes.value(), payload);
  failpoint::DisarmAll();
}

// --- EINTR storm -----------------------------------------------------------

volatile std::sig_atomic_t g_ticks = 0;
void OnAlarm(int) { g_ticks = g_ticks + 1; }

// Hammers WriteFull/ReadFull across a pipe while a no-SA_RESTART SIGALRM
// ticker interrupts the blocking syscalls: writes block when the pipe
// fills, reads block when it drains, and the timer turns both into a
// stream of EINTRs (and short transfers) the helpers must absorb.
TEST(StorageIoTest, EintrStormDoesNotCorruptTheStream) {
  struct sigaction action = {};
  action.sa_handler = OnAlarm;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old_action;
  ASSERT_EQ(sigaction(SIGALRM, &action, &old_action), 0);

  struct itimerval timer = {};
  timer.it_interval.tv_usec = 1000;  // 1 ms
  timer.it_value.tv_usec = 1000;
  struct itimerval old_timer;
  ASSERT_EQ(setitimer(ITIMER_REAL, &timer, &old_timer), 0);

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string payload;
  for (int i = 0; i < (1 << 22); ++i) payload += static_cast<char>(i % 253);

  std::string received;
  std::thread reader([&] {
    Status status = storage::ReadFull(fds[0], &received, "storm pipe");
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  Status status = storage::WriteFull(fds[1], payload, "storm pipe");
  EXPECT_TRUE(status.ok()) << status.ToString();
  ::close(fds[1]);  // EOF for the reader
  reader.join();
  ::close(fds[0]);

  struct itimerval off = {};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old_action, nullptr);

  EXPECT_GT(static_cast<int>(g_ticks), 0) << "timer never fired; the storm "
                                             "did not exercise EINTR";
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

TEST(StorageIoTest, OpenFdReportsMissingFiles) {
  Result<int> fd = storage::OpenFd(TestPath("io_nope/missing"),
                                   O_RDONLY | O_CLOEXEC, 0, "missing file");
  ASSERT_FALSE(fd.ok());
  EXPECT_NE(fd.status().ToString().find("missing file"), std::string::npos);
}

}  // namespace
}  // namespace iodb
