// Round-trip property suite for the storage layer: for randomized
// databases drawn from the same generator families the cross-engine
// conformance fuzzer uses (k-observer monadic chains across the
// fuzzer's parameter ranges, mixed-sort enrichments, alignment
// databases, and parser-rendered re-parses), Database -> snapshot ->
// Database is an identity:
//
//   * same facts, order atoms and inequalities (by name),
//   * same symbol tables and (uid, revision) identity,
//   * byte-stable re-serialization (encode o decode o encode = encode),
//   * same verdict for queries drawn from each fuzzer query family
//     (conjunctive / sequential / disjunctive), evaluated through the
//     facade on the original and the restored database,
//
// plus the explicit little/big-endian encode guard: the on-disk layout
// is asserted byte-for-byte, so the format cannot silently depend on
// host endianness.
//
// Knobs: IODB_STORAGE_ROUNDTRIP_ITERATIONS (default 120),
// IODB_STORAGE_ROUNDTRIP_SEED (run exactly one instance).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/parser.h"
#include "core/printer.h"
#include "storage/codec.h"
#include "storage/snapshot.h"
#include "util/random.h"
#include "workload/generators.h"

namespace iodb {
namespace {

int Iterations() {
  const char* env = std::getenv("IODB_STORAGE_ROUNDTRIP_ITERATIONS");
  if (env != nullptr) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 120;
}

std::optional<uint64_t> SingleSeed() {
  const char* env = std::getenv("IODB_STORAGE_ROUNDTRIP_SEED");
  if (env == nullptr) return std::nullopt;
  return std::strtoull(env, nullptr, 10);
}

constexpr uint64_t kSeedBase = 20260730500ULL;

std::vector<std::string> FactNames(const Database& db) {
  std::vector<std::string> out;
  for (const ProperAtom& atom : db.proper_atoms()) {
    std::string fact = db.vocab()->predicate(atom.pred).name + "(";
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) fact += ", ";
      fact += atom.args[i].sort == Sort::kObject
                  ? db.object_name(atom.args[i].id)
                  : db.order_name(atom.args[i].id);
    }
    fact += ")";
    out.push_back(std::move(fact));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> OrderAtomNames(const Database& db) {
  std::vector<std::string> out;
  for (const OrderAtom& atom : db.order_atoms()) {
    out.push_back(db.order_name(atom.lhs) +
                  (atom.rel == OrderRel::kLt ? " < " : " <= ") +
                  db.order_name(atom.rhs));
  }
  for (const InequalityAtom& atom : db.inequalities()) {
    out.push_back(db.order_name(atom.lhs) + " != " + db.order_name(atom.rhs));
  }
  return out;  // order preserved by the format; compare exactly
}

// Database families. 0/1 mirror the fuzzer's generator; 2 enriches with
// mixed-sort n-ary facts, object-only facts and inequalities; 3 is the
// parse of a rendered database (the text pipeline's view).
Database DrawDatabase(uint64_t seed, const VocabularyPtr& vocab,
                      int* family_out) {
  Rng rng(seed);
  MonadicDbParams params;
  params.num_chains = rng.UniformInt(1, 3);
  params.chain_length =
      params.num_chains == 3 ? rng.UniformInt(2, 3) : rng.UniformInt(2, 5);
  params.num_predicates = rng.UniformInt(2, 3);
  params.label_probability = rng.UniformInt(30, 70) / 100.0;
  params.le_probability = rng.UniformInt(0, 40) / 100.0;
  Database db = RandomMonadicDb(params, vocab, rng);

  const int family = static_cast<int>(rng.UniformInt(0, 3));
  *family_out = family;
  if (family >= 2 && db.num_order_constants() >= 2) {
    // Mixed-sort enrichment: inequalities between random order
    // constants, an order-object fact, and a pure object fact.
    const int u = rng.UniformInt(0, db.num_order_constants() - 1);
    const int v = rng.UniformInt(0, db.num_order_constants() - 1);
    if (u != v) db.AddInequality(std::min(u, v), std::max(u, v));
    EXPECT_TRUE(db.AddFact("Marked", {db.order_name(0), "Obj_A"}).ok());
    EXPECT_TRUE(db.AddFact("Owns", {"Obj_A", "Obj_B"}).ok());
  }
  if (family == 3) {
    // Render to text and re-parse into a sibling database over the same
    // vocabulary; the snapshot round trip then runs on the parsed form.
    Result<Database> parsed = ParseDatabase(ToString(db), vocab);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (parsed.ok()) return std::move(parsed.value());
  }
  return db;
}

Query DrawQuery(uint64_t seed, const VocabularyPtr& vocab,
                int num_predicates) {
  Rng rng(seed ^ 0x51CA9E5ULL);
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return RandomConjunctiveMonadicQuery(
          static_cast<int>(rng.UniformInt(2, 4)), num_predicates,
          rng.UniformInt(30, 60) / 100.0, rng.UniformInt(30, 70) / 100.0,
          rng.UniformInt(0, 40) / 100.0, vocab, rng);
    case 1:
      return RandomSequentialQuery(static_cast<int>(rng.UniformInt(1, 3)),
                                   num_predicates,
                                   rng.UniformInt(30, 70) / 100.0,
                                   rng.UniformInt(0, 40) / 100.0, vocab, rng);
    default:
      return RandomDisjunctiveSequentialQuery(
          static_cast<int>(rng.UniformInt(2, 3)),
          static_cast<int>(rng.UniformInt(1, 2)), num_predicates,
          rng.UniformInt(30, 70) / 100.0, rng.UniformInt(0, 40) / 100.0,
          vocab, rng);
  }
}

void CheckInstance(uint64_t seed) {
  auto vocab = std::make_shared<Vocabulary>();
  DeclareMonadicPredicates(*vocab, 3);
  int family = 0;
  Database db = DrawDatabase(seed, vocab, &family);

  const std::string bytes = storage::EncodeSnapshot(db);
  Result<Database> restored = storage::DecodeSnapshot(bytes);
  ASSERT_TRUE(restored.ok())
      << "seed " << seed << ": " << restored.status().ToString();
  const Database& db2 = restored.value();

  // Identity.
  EXPECT_EQ(db2.uid(), db.uid()) << "seed " << seed;
  EXPECT_EQ(db2.revision(), db.revision()) << "seed " << seed;
  // Content by name.
  EXPECT_EQ(FactNames(db2), FactNames(db)) << "seed " << seed;
  EXPECT_EQ(OrderAtomNames(db2), OrderAtomNames(db)) << "seed " << seed;
  // Byte-stable re-serialization.
  EXPECT_EQ(storage::EncodeSnapshot(db2), bytes)
      << "seed " << seed << " family " << family
      << ": re-serialization not byte-stable";

  // Verdict equivalence through the facade for a query drawn from the
  // fuzzer's query families (restored database over a fresh vocabulary,
  // so the query is drawn per database object).
  Query query1 = DrawQuery(seed, vocab, 3);
  Query query2 = DrawQuery(seed, db2.vocab(), 3);
  EntailOptions options;
  Result<EntailResult> verdict1 = Entails(db, query1, options);
  Result<EntailResult> verdict2 = Entails(db2, query2, options);
  ASSERT_EQ(verdict1.ok(), verdict2.ok()) << "seed " << seed;
  if (verdict1.ok()) {
    EXPECT_EQ(verdict1.value().entailed, verdict2.value().entailed)
        << "seed " << seed << "\ndb:\n"
        << ToString(db) << "\nquery: " << ToString(query1);
  }

  // Shared-vocabulary remap path: decode into a vocabulary whose ids
  // are shifted by a pre-registered predicate.
  auto shared = std::make_shared<Vocabulary>();
  shared->MustAddPredicate("ZZ_shift", {Sort::kOrder});
  Result<Database> remapped = storage::DecodeSnapshotInto(bytes, shared);
  ASSERT_TRUE(remapped.ok())
      << "seed " << seed << ": " << remapped.status().ToString();
  EXPECT_EQ(FactNames(remapped.value()), FactNames(db)) << "seed " << seed;
  EXPECT_EQ(OrderAtomNames(remapped.value()), OrderAtomNames(db))
      << "seed " << seed;
}

TEST(StorageRoundTrip, LittleEndianEncodeGuard) {
  // The format is little-endian regardless of the host: these exact
  // bytes must be produced on big-endian machines too (the codec uses
  // shift arithmetic, never memcpy of host integers).
  std::string bytes;
  storage::AppendU32(&bytes, 0xA1B2C3D4u);
  storage::AppendU64(&bytes, 0x1122334455667788ull);
  const unsigned char expected[12] = {0xD4, 0xC3, 0xB2, 0xA1, 0x88, 0x77,
                                      0x66, 0x55, 0x44, 0x33, 0x22, 0x11};
  ASSERT_EQ(bytes.size(), 12u);
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i])
        << "byte " << i;
  }
  // And a snapshot header always starts with the magic + LE version.
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  const std::string snap = storage::EncodeSnapshot(db);
  ASSERT_GE(snap.size(), 16u);
  EXPECT_EQ(snap.substr(0, 8), "IODBSNAP");
  EXPECT_EQ(static_cast<unsigned char>(snap[8]),
            storage::kSnapshotFormatVersion);
  EXPECT_EQ(static_cast<unsigned char>(snap[9]), 0);
  EXPECT_EQ(static_cast<unsigned char>(snap[10]), 0);
  EXPECT_EQ(static_cast<unsigned char>(snap[11]), 0);
  // Endian tag 0x1A2B3C4D, little-endian.
  EXPECT_EQ(static_cast<unsigned char>(snap[12]), 0x4D);
  EXPECT_EQ(static_cast<unsigned char>(snap[13]), 0x3C);
  EXPECT_EQ(static_cast<unsigned char>(snap[14]), 0x2B);
  EXPECT_EQ(static_cast<unsigned char>(snap[15]), 0x1A);
}

TEST(StorageRoundTrip, GeneratorFamiliesAreIdentityUnderSnapshot) {
  if (std::optional<uint64_t> seed = SingleSeed(); seed.has_value()) {
    CheckInstance(*seed);
    return;
  }
  const int iterations = Iterations();
  for (int i = 0; i < iterations; ++i) {
    CheckInstance(kSeedBase + static_cast<uint64_t>(i));
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "storage round-trip failed at seed "
             << kSeedBase + static_cast<uint64_t>(i)
             << " (rerun with IODB_STORAGE_ROUNDTRIP_SEED)";
    }
  }
}

TEST(StorageRoundTrip, AlignmentFamilyRoundTrips) {
  auto vocab = std::make_shared<Vocabulary>();
  Rng rng(7);
  Database db = AlignmentDb(RandomDnaSequence(12, rng),
                            RandomDnaSequence(10, rng), vocab);
  const std::string bytes = storage::EncodeSnapshot(db);
  Result<Database> restored = storage::DecodeSnapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(FactNames(restored.value()), FactNames(db));
  EXPECT_EQ(OrderAtomNames(restored.value()), OrderAtomNames(db));
  EXPECT_EQ(storage::EncodeSnapshot(restored.value()), bytes);
}

}  // namespace
}  // namespace iodb
