// Write-ahead log tests (storage/wal.h), centered on the
// crash-recovery contract: a recorded session's WAL, truncated at EVERY
// byte boundary, must either replay a clean prefix of its committed
// groups or fail with a checksum/format error — never crash, never
// apply a partial group, never silently corrupt. A bit-flip sweep
// checks the same for corruption, and unit tests cover record parsing,
// group atomicity, replay determinism (content AND revision), and
// compaction via the snapshot.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "storage/snapshot.h"

namespace iodb {
namespace {

namespace fs = std::filesystem;

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadBytes(const std::string& path) {
  Result<std::string> bytes = storage::ReadFileBytes(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? bytes.value() : std::string();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// One recorded session: a base database, its snapshot, and a WAL of
// three committed mutation groups. Returns the per-prefix valid states
// (atom count and revision after 0..3 groups).
struct RecordedSession {
  std::string snapshot_bytes;
  std::string wal_path;
  std::string vocab_path;
  uint64_t base_uid = 0;
  uint64_t base_revision = 0;
  std::vector<int> atoms_after;           // [0..groups]
  std::vector<uint64_t> revision_after;   // [0..groups]
};

RecordedSession RecordSession(const std::string& wal_name) {
  RecordedSession session;
  auto vocab = std::make_shared<Vocabulary>();
  // Build the base database through the same record path replay uses.
  Database db(vocab);
  Result<std::vector<storage::WalRecord>> base_records =
      storage::ParseMutationText("P(u)\nQ(v)\nu < v\n", vocab);
  EXPECT_TRUE(base_records.ok());
  EXPECT_TRUE(storage::ApplyWalRecords(base_records.value(), &db).ok());

  session.snapshot_bytes = storage::EncodeSnapshot(db);
  session.base_uid = db.uid();
  session.base_revision = db.revision();
  session.wal_path = TestPath(wal_name);
  EXPECT_TRUE(storage::CreateWal(session.wal_path, session.base_uid,
                                 session.base_revision)
                  .ok());
  session.atoms_after.push_back(db.SizeAtoms());
  session.revision_after.push_back(db.revision());

  const char* groups[] = {
      "R(w)\nv < w\n",
      "P(w); u != w\n",
      "pred IC(order, order, object)\nIC(u, w, A)\n",
  };
  for (const char* text : groups) {
    Result<std::vector<storage::WalRecord>> records =
        storage::ParseMutationText(text, vocab);
    EXPECT_TRUE(records.ok()) << records.status().ToString();
    EXPECT_TRUE(storage::ApplyWalRecords(records.value(), &db).ok());
    EXPECT_TRUE(
        storage::AppendWalGroup(session.wal_path, records.value()).ok());
    session.atoms_after.push_back(db.SizeAtoms());
    session.revision_after.push_back(db.revision());
  }
  // The vocabulary sidecar carries the predicates the WAL groups
  // registered after the snapshot was taken (the registry persists it on
  // every append); replay needs it for sort-correct name resolution.
  session.vocab_path = TestPath(wal_name + ".vocab");
  EXPECT_TRUE(storage::SaveVocabulary(*vocab, session.vocab_path).ok());
  return session;
}

// The registry's open sequence: vocabulary sidecar, then the snapshot
// decoded into it.
Result<Database> RestoreBase(const RecordedSession& session) {
  auto vocab = std::make_shared<Vocabulary>();
  Status status = storage::RestoreVocabularyInto(session.vocab_path,
                                                 vocab.get());
  if (!status.ok()) return status;
  return storage::DecodeSnapshotInto(session.snapshot_bytes, vocab);
}

TEST(Wal, ParseMutationTextProducesNameRecords) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<std::vector<storage::WalRecord>> records =
      storage::ParseMutationText("P(u)\nu < v\nv <= w\nu != w\n", vocab);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records.value().size(), 4u);
  EXPECT_EQ(records.value()[0].kind, storage::WalRecord::Kind::kFact);
  EXPECT_EQ(records.value()[0].pred, "P");
  EXPECT_EQ(records.value()[0].args, std::vector<std::string>{"u"});
  EXPECT_EQ(records.value()[1].kind, storage::WalRecord::Kind::kOrder);
  EXPECT_EQ(records.value()[1].rel, OrderRel::kLt);
  EXPECT_EQ(records.value()[2].kind, storage::WalRecord::Kind::kOrder);
  EXPECT_EQ(records.value()[2].rel, OrderRel::kLe);
  EXPECT_EQ(records.value()[3].kind, storage::WalRecord::Kind::kNotEqual);
  EXPECT_EQ(records.value()[3].lhs, "u");
  EXPECT_EQ(records.value()[3].rhs, "w");
}

TEST(Wal, ReplayReproducesContentAndRevision) {
  RecordedSession session = RecordSession("wal_replay.wal");
  Result<Database> restored = RestoreBase(session);
  ASSERT_TRUE(restored.ok());
  Result<storage::WalReplayStats> stats =
      storage::ReplayWal(session.wal_path, session.base_uid,
                         session.base_revision, &restored.value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().groups_applied, 3);
  EXPECT_FALSE(stats.value().truncated_tail);
  // Replay converges to the live session's exact state: atoms AND the
  // revision counter (every mutator bump is replayed), which is what
  // keeps (uid, revision)-keyed caches valid across restarts.
  EXPECT_EQ(restored.value().SizeAtoms(), session.atoms_after.back());
  EXPECT_EQ(restored.value().revision(), session.revision_after.back());
  EXPECT_EQ(restored.value().uid(), session.base_uid);
}

TEST(Wal, ReplayRejectsMismatchedSnapshotIdentity) {
  RecordedSession session = RecordSession("wal_mismatch.wal");
  Result<Database> restored = RestoreBase(session);
  ASSERT_TRUE(restored.ok());
  Result<storage::WalReplayStats> stats = storage::ReplayWal(
      session.wal_path, session.base_uid + 1, session.base_revision,
      &restored.value());
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("identity"), std::string::npos);
}

TEST(Wal, TruncationAtEveryByteBoundaryIsPrefixOrError) {
  RecordedSession session = RecordSession("wal_truncate.wal");
  const std::string wal = ReadBytes(session.wal_path);
  ASSERT_GT(wal.size(), 0u);
  const std::set<int> valid_atoms(session.atoms_after.begin(),
                                  session.atoms_after.end());
  const std::set<uint64_t> valid_revisions(session.revision_after.begin(),
                                           session.revision_after.end());
  const std::string truncated_path = TestPath("wal_truncate_prefix.wal");
  for (size_t length = 0; length <= wal.size(); ++length) {
    WriteBytes(truncated_path, wal.substr(0, length));
    Result<Database> restored = RestoreBase(session);
    ASSERT_TRUE(restored.ok());
    Result<storage::WalReplayStats> stats =
        storage::ReplayWal(truncated_path, session.base_uid,
                           session.base_revision, &restored.value());
    if (stats.ok()) {
      // A clean prefix: the restored state must be exactly one of the
      // states the live session passed through — anything else is
      // silent corruption.
      EXPECT_TRUE(valid_atoms.count(restored.value().SizeAtoms()) == 1)
          << "prefix " << length << " replayed to "
          << restored.value().SizeAtoms() << " atoms";
      // The reported clean prefix must itself replay to the same state
      // (it is what the registry truncates a torn file to).
      ASSERT_LE(stats.value().clean_prefix_bytes, length);
      WriteBytes(truncated_path,
                 wal.substr(0, static_cast<size_t>(
                                   stats.value().clean_prefix_bytes)));
      Result<Database> reclean = RestoreBase(session);
      ASSERT_TRUE(reclean.ok());
      Result<storage::WalReplayStats> restat =
          storage::ReplayWal(truncated_path, session.base_uid,
                             session.base_revision, &reclean.value());
      ASSERT_TRUE(restat.ok()) << "clean prefix of " << length << ": "
                               << restat.status().ToString();
      EXPECT_FALSE(restat.value().truncated_tail) << "prefix " << length;
      EXPECT_EQ(reclean.value().SizeAtoms(), restored.value().SizeAtoms())
          << "prefix " << length;
      EXPECT_TRUE(valid_revisions.count(restored.value().revision()) == 1)
          << "prefix " << length;
      if (length == wal.size()) {
        EXPECT_FALSE(stats.value().truncated_tail);
        EXPECT_EQ(restored.value().SizeAtoms(), session.atoms_after.back());
      }
    }
    // !ok is equally acceptable (header or structural damage) — the
    // contract is "prefix or error", and the ASSERTs above guarantee
    // we got here without crashing.
  }
}

TEST(Wal, BitFlipAtEveryByteIsPrefixOrError) {
  RecordedSession session = RecordSession("wal_bitflip.wal");
  const std::string wal = ReadBytes(session.wal_path);
  const std::set<int> valid_atoms(session.atoms_after.begin(),
                                  session.atoms_after.end());
  const std::string flipped_path = TestPath("wal_bitflip_mut.wal");
  for (size_t i = 0; i < wal.size(); ++i) {
    std::string flipped = wal;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x5A);
    WriteBytes(flipped_path, flipped);
    Result<Database> restored = RestoreBase(session);
    ASSERT_TRUE(restored.ok());
    Result<storage::WalReplayStats> stats =
        storage::ReplayWal(flipped_path, session.base_uid,
                           session.base_revision, &restored.value());
    if (stats.ok()) {
      EXPECT_TRUE(valid_atoms.count(restored.value().SizeAtoms()) == 1)
          << "flip at byte " << i << " replayed to "
          << restored.value().SizeAtoms() << " atoms";
    }
  }
}

TEST(Wal, UncommittedGroupIsDiscarded) {
  RecordedSession session = RecordSession("wal_uncommitted.wal");
  // Append a BEGIN + one record with no COMMIT, byte-identical to a
  // crash between the group write being half-flushed: reuse the file
  // bytes of a real group minus its COMMIT record (records are
  // self-delimiting, so chop the last 13 bytes: type + length + empty
  // payload + checksum).
  const std::string before = ReadBytes(session.wal_path);
  const std::string group_path = TestPath("wal_uncommitted_cut.wal");
  {
    // Record a fourth group, then cut its COMMIT.
    Result<Database> restored = RestoreBase(session);
    ASSERT_TRUE(restored.ok());
    Result<std::vector<storage::WalRecord>> records =
        storage::ParseMutationText("Q(u)\n", restored.value().vocab());
    ASSERT_TRUE(records.ok());
    ASSERT_TRUE(
        storage::AppendWalGroup(session.wal_path, records.value()).ok());
    const std::string after = ReadBytes(session.wal_path);
    ASSERT_GT(after.size(), before.size());
    constexpr size_t kCommitBytes = 1 + 4 + 0 + 8;
    WriteBytes(group_path, after.substr(0, after.size() - kCommitBytes));
  }
  Result<Database> restored = RestoreBase(session);
  ASSERT_TRUE(restored.ok());
  Result<storage::WalReplayStats> stats =
      storage::ReplayWal(group_path, session.base_uid,
                         session.base_revision, &restored.value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().truncated_tail);
  EXPECT_EQ(stats.value().groups_applied, 3);
  EXPECT_EQ(restored.value().SizeAtoms(), session.atoms_after[3]);
}

TEST(Wal, CompactionFoldsTheLogIntoAFreshSnapshot) {
  RecordedSession session = RecordSession("wal_compact.wal");
  // Open: snapshot + replay.
  Result<Database> live = RestoreBase(session);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(storage::ReplayWal(session.wal_path, session.base_uid,
                                 session.base_revision, &live.value())
                  .ok());
  // Compact: fresh snapshot of the replayed state + empty WAL on the
  // new base identity.
  const std::string compacted_snap = storage::EncodeSnapshot(live.value());
  ASSERT_TRUE(storage::CreateWal(session.wal_path, live.value().uid(),
                                 live.value().revision())
                  .ok());
  // Re-open from the compacted pair: identical state, empty replay.
  Result<Database> reopened = storage::DecodeSnapshot(compacted_snap);
  ASSERT_TRUE(reopened.ok());
  Result<storage::WalReplayStats> stats =
      storage::ReplayWal(session.wal_path, reopened.value().uid(),
                         reopened.value().revision(), &reopened.value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().groups_applied, 0);
  EXPECT_EQ(reopened.value().SizeAtoms(), session.atoms_after.back());
  EXPECT_EQ(reopened.value().revision(), session.revision_after.back());
}

TEST(Wal, ApplyRejectsSortClashInsteadOfAborting) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  ASSERT_TRUE(db.AddFact("Owns", {"A", "B"}).ok());  // A is object-sort
  storage::WalRecord record;
  record.kind = storage::WalRecord::Kind::kOrder;
  record.lhs = "A";
  record.rel = OrderRel::kLt;
  record.rhs = "fresh";
  Status status = storage::ApplyWalRecords({record}, &db);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("object constant"), std::string::npos);
}

TEST(Wal, MissingFileIsAnError) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  Result<storage::WalReplayStats> stats =
      storage::ReplayWal(TestPath("no_such.wal"), db.uid(), db.revision(),
                         &db);
  EXPECT_FALSE(stats.ok());
}

}  // namespace
}  // namespace iodb
