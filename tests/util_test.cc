#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"

namespace iodb {
namespace {

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim("a, b ,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAndTrim(" , ,", ','), std::vector<std::string>{});
  EXPECT_EQ(SplitAndTrim("one", ','), std::vector<std::string>{"one"});
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\n "), "");
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("abc"));
  EXPECT_TRUE(IsIdentifier("_a1'"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1a"));
  EXPECT_FALSE(IsIdentifier("a b"));
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::Inconsistent("cycle"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInconsistent);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(2);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= v == -2;
    hi |= v == 2;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(4);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  rng.Shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 6u);
}

}  // namespace
}  // namespace iodb
