// Section 6: the well-quasi-order machinery and basis evaluation.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/entail_bruteforce.h"
#include "core/entail_disjunctive.h"
#include "core/parser.h"
#include "core/wqo.h"
#include "workload/generators.h"

namespace iodb {
namespace {

NormDb ParseNorm(const std::string& text, VocabularyPtr vocab) {
  Result<Database> db = ParseDatabase(text, std::move(vocab));
  IODB_CHECK(db.ok());
  Result<NormDb> norm = Normalize(db.value());
  IODB_CHECK(norm.ok());
  return std::move(norm.value());
}

VocabularyPtr Vocab(int n) {
  auto vocab = std::make_shared<Vocabulary>();
  DeclareMonadicPredicates(*vocab, n);
  return vocab;
}

TEST(DbLeqTest, ReflexiveAndBasicCases) {
  auto vocab = Vocab(2);
  NormDb chain = ParseNorm("P0(a)\na < b\nP1(b)", vocab);
  NormDb longer = ParseNorm("P0(a)\na < m\nm < b\nP1(b)\nP0(m)", Vocab(2));
  EXPECT_TRUE(DbLeq(chain, chain));
  // The longer database entails everything the shorter does.
  EXPECT_TRUE(DbLeq(chain, longer));
  EXPECT_FALSE(DbLeq(longer, chain));
}

TEST(DbLeqTest, Lemma64Monotonicity) {
  // D1 ⊑ D2 and D1 |= Φ imply D2 |= Φ, on random monadic instances.
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(seed + 60000);
    auto vocab = Vocab(2);
    MonadicDbParams params;
    params.num_chains = rng.UniformInt(1, 2);
    params.chain_length = rng.UniformInt(1, 3);
    params.num_predicates = 2;
    Database d1 = RandomMonadicDb(params, vocab, rng);
    params.chain_length = rng.UniformInt(1, 3);
    Database d2 = RandomMonadicDb(params, vocab, rng);
    Result<NormDb> n1 = Normalize(d1);
    Result<NormDb> n2 = Normalize(d2);
    ASSERT_TRUE(n1.ok());
    ASSERT_TRUE(n2.ok());
    if (!DbLeq(n1.value(), n2.value())) continue;
    Query query = RandomDisjunctiveSequentialQuery(
        rng.UniformInt(1, 2), rng.UniformInt(1, 3), 2, 0.3, 0.3, vocab, rng);
    Result<NormQuery> nq = NormalizeQuery(query);
    ASSERT_TRUE(nq.ok());
    bool e1 = EntailBruteForce(n1.value(), nq.value()).entailed;
    bool e2 = EntailBruteForce(n2.value(), nq.value()).entailed;
    if (e1) {
      EXPECT_TRUE(e2) << "seed " << seed;
    }
  }
}

TEST(CompiledQueryTest, ConjunctiveBasisIsExact) {
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(seed + 61000);
    auto vocab = Vocab(3);
    MonadicDbParams params;
    params.num_chains = rng.UniformInt(1, 3);
    params.chain_length = rng.UniformInt(1, 4);
    params.num_predicates = 3;
    Database db = RandomMonadicDb(params, vocab, rng);
    Query query =
        RandomConjunctiveMonadicQuery(3, 3, 0.4, 0.4, 0.3, vocab, rng);
    Result<NormDb> ndb = Normalize(db);
    Result<NormQuery> nq = NormalizeQuery(query);
    ASSERT_TRUE(ndb.ok());
    ASSERT_TRUE(nq.ok());
    CompiledQuery compiled =
        CompiledQuery::CompileConjunctive(nq.value().disjuncts[0]);
    EXPECT_EQ(compiled.Entails(ndb.value()),
              EntailBruteForce(ndb.value(), nq.value()).entailed)
        << "seed " << seed;
  }
}

TEST(CompiledQueryTest, DbOfConjunctIsTheMinimalElement) {
  // D_Φ |= Φ, and D |= Φ iff D_Φ ⊑ D (the end-of-Section-6 argument).
  auto vocab = Vocab(2);
  Query q(vocab);
  QueryConjunct& c = q.AddDisjunct();
  c.Exists("t1").Exists("t2");
  c.Atom("P0", {"t1"}).Atom("P1", {"t2"});
  c.Order("t1", OrderRel::kLt, "t2");
  Result<NormQuery> nq = NormalizeQuery(q);
  ASSERT_TRUE(nq.ok());
  const NormConjunct& conjunct = nq.value().disjuncts[0];
  Database d_phi = DbOfConjunct(conjunct, vocab);
  Result<NormDb> norm = Normalize(d_phi);
  ASSERT_TRUE(norm.ok());
  EXPECT_TRUE(EntailBruteForce(norm.value(), nq.value()).entailed);
  CompiledQuery compiled = CompiledQuery::CompileConjunctive(conjunct);
  EXPECT_TRUE(compiled.Entails(norm.value()));
}

TEST(WordBasisSearchTest, FindsTheObviousBasis) {
  // Query ∃t P0(t): the basis among words is the single word [P0].
  auto vocab = Vocab(2);
  Query q(vocab);
  q.AddDisjunct().Exists("t").Atom("P0", {"t"});
  Result<NormQuery> nq = NormalizeQuery(q);
  ASSERT_TRUE(nq.ok());
  std::vector<FlexiWord> basis = WordBasisSearch(nq.value(), 2, 10000);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0].size(), 1);
  EXPECT_TRUE(basis[0].symbols[0].Contains(0));
}

TEST(WordBasisSearchTest, DisjunctiveBasisSound) {
  // Query ∃t P0(t) | ∃t P1(t): a word entails it iff some symbol
  // contains P0 or P1; minimal words are [P0] and [P1].
  auto vocab = Vocab(2);
  Query q(vocab);
  q.AddDisjunct().Exists("t").Atom("P0", {"t"});
  q.AddDisjunct().Exists("s").Atom("P1", {"s"});
  Result<NormQuery> nq = NormalizeQuery(q);
  ASSERT_TRUE(nq.ok());
  std::vector<FlexiWord> basis = WordBasisSearch(nq.value(), 2, 10000);
  EXPECT_EQ(basis.size(), 2u);
  for (const FlexiWord& w : basis) {
    // Soundness: every basis element entails the query.
    Database db = DbOfFlexiWord(w, vocab);
    Result<NormDb> norm = Normalize(db);
    ASSERT_TRUE(norm.ok());
    EXPECT_TRUE(EntailDisjunctive(norm.value(), nq.value()).entailed);
  }
}

TEST(WordBasisSearchTest, SequenceQueryBasis) {
  // Query ∃t1t2 [P0(t1) ∧ t1 < t2 ∧ P1(t2)]: minimal word [P0][P1].
  auto vocab = Vocab(2);
  Query q(vocab);
  QueryConjunct& c = q.AddDisjunct();
  c.Exists("t1").Exists("t2");
  c.Atom("P0", {"t1"}).Atom("P1", {"t2"});
  c.Order("t1", OrderRel::kLt, "t2");
  Result<NormQuery> nq = NormalizeQuery(q);
  ASSERT_TRUE(nq.ok());
  std::vector<FlexiWord> basis = WordBasisSearch(nq.value(), 3, 100000);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0].size(), 2);
}

}  // namespace
}  // namespace iodb
