#!/usr/bin/env python3
"""Compare two aggregated benchmark reports and fail on regressions.

Usage:
  tools/bench_compare.py BASELINE.json CANDIDATE.json [options]

Both inputs are the {"cmake_build_type": ..., "runs": [...]} aggregates
written by tools/run_benches.sh (each run element is one binary's
--benchmark_format=json report). For every benchmark name present in
both files, the wall-clock time is compared after normalizing units;
the exit status is nonzero if any shared benchmark regressed by more
than the threshold (default 10%).

Benchmarks present in only one file are listed but never fail the
comparison: the suite is expected to grow, and a pruned benchmark is a
review question, not a perf regression. Aggregate rows (mean/median/
stddev of repetition runs) and errored benchmarks are skipped.

Options:
  --threshold PCT   failure threshold in percent (default: 10)
  --metric {real,cpu}
                    which per-iteration time to compare (default: real)
  --filter SUBSTR   only compare benchmarks whose name contains SUBSTR
  --min-improvement PCT
                    additionally require EVERY shared benchmark to be at
                    least PCT percent faster in the candidate. This turns
                    the tool into an A/B gate: comparing a costing-off
                    baseline against a costing-on candidate with
                    --min-improvement 16.7 asserts a >=1.2x speedup on
                    every compared benchmark.
"""

import argparse
import json
import sys

# google-benchmark time_unit values, as nanoseconds per unit.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path, metric):
    """Returns {benchmark name: time in ns} for one aggregate file."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if "runs" not in data:
        raise SystemExit(f"{path}: not a run_benches.sh aggregate "
                         "(missing \"runs\")")
    key = "cpu_time" if metric == "cpu" else "real_time"
    times = {}
    for run in data["runs"]:
        for bench in run.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            if bench.get("error_occurred"):
                continue
            name = bench["name"]
            ns = bench[key] * _UNIT_NS[bench.get("time_unit", "ns")]
            if name in times:
                print(f"{path}: duplicate benchmark name {name!r}; "
                      "keeping the first occurrence", file=sys.stderr)
                continue
            times[name] = ns
    return times


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="failure threshold in percent (default: 10)")
    parser.add_argument("--metric", choices=("real", "cpu"), default="real")
    parser.add_argument("--filter", default="",
                        help="only compare names containing this substring")
    parser.add_argument("--min-improvement", type=float, default=None,
                        metavar="PCT",
                        help="fail unless every shared benchmark improved "
                             "by at least PCT percent")
    args = parser.parse_args()

    base = load_times(args.baseline, args.metric)
    cand = load_times(args.candidate, args.metric)
    if args.filter:
        base = {k: v for k, v in base.items() if args.filter in k}
        cand = {k: v for k, v in cand.items() if args.filter in k}

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if not shared:
        raise SystemExit("no shared benchmarks to compare "
                         f"({len(base)} baseline, {len(cand)} candidate)")

    regressions = []
    improvements = 0
    too_slow = []
    for name in shared:
        b, c = base[name], cand[name]
        if b <= 0.0:
            continue
        delta_pct = 100.0 * (c - b) / b
        if delta_pct > args.threshold:
            regressions.append((delta_pct, name, b, c))
        elif delta_pct < -args.threshold:
            improvements += 1
        if (args.min_improvement is not None
                and delta_pct > -args.min_improvement):
            too_slow.append((delta_pct, name, b, c))

    print(f"compared {len(shared)} shared benchmarks "
          f"({args.metric} time, threshold {args.threshold:g}%)")
    if only_base:
        print(f"  {len(only_base)} only in baseline (ignored): "
              + ", ".join(only_base[:5])
              + (" ..." if len(only_base) > 5 else ""))
    if only_cand:
        print(f"  {len(only_cand)} only in candidate (ignored): "
              + ", ".join(only_cand[:5])
              + (" ..." if len(only_cand) > 5 else ""))
    if improvements:
        print(f"  {improvements} improved by more than {args.threshold:g}%")

    if regressions:
        regressions.sort(reverse=True)
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
              f"than {args.threshold:g}%:")
        for delta_pct, name, b, c in regressions:
            print(f"  {name}: {fmt_ns(b)} -> {fmt_ns(c)}  (+{delta_pct:.1f}%)")
        return 1
    if too_slow:
        too_slow.sort(reverse=True)
        print(f"\nFAIL: {len(too_slow)} benchmark(s) improved by less than "
              f"the required {args.min_improvement:g}%:")
        for delta_pct, name, b, c in too_slow:
            print(f"  {name}: {fmt_ns(b)} -> {fmt_ns(c)}  "
                  f"({delta_pct:+.1f}%)")
        return 1
    if args.min_improvement is not None:
        print(f"OK: all {len(shared)} shared benchmarks improved by at "
              f"least {args.min_improvement:g}%")
        return 0
    print("OK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
