// iodb_eval: command-line entailment checker.
//
// Usage:
//   iodb_eval DB_FILE [QUERY] [--query-file=PATH]
//             [--db-snapshot=PATH]
//             [--semantics=finite|integer|rational]
//             [--engine=auto|brute-force|path-decomposition|bounded-width
//                     |disjunctive-search]
//             [--costing=on|off] [--countermodel] [--explain]
//
// Reads a database in the parser's text format from DB_FILE and evaluates
// the query (also text format) against it. --costing=on (the default)
// feeds the database's statistics-backed cost model (src/stats) into
// Prepare(), which may reorder conjunct schedules and disjuncts and
// suggest an engine route; --costing=off plans from the pure
// topological order. Costing never changes verdicts. --db-snapshot=PATH replaces
// DB_FILE with a binary snapshot (storage/snapshot.h; write one with
// iodb_pack) and skips the text parser entirely — the vocabulary and
// database identity come from the file. The query comes from exactly
// one source: the QUERY argument, `-` to read it from stdin, or
// --query-file=PATH. --explain prints the compiled plan (passes with
// provenance, per-disjunct classification) before the verdict and the
// evaluation work counters (models enumerated, incremental push/pop
// operations, index probes, assignments) after it. Engine
// names are the ones printed by the tool itself (EngineKindName), so
// output and flags round-trip; the historical shorthands "paths" and
// "disjunctive" are still accepted. Exit code 0 = entailed, 1 = not
// entailed, 2 = error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "core/parser.h"
#include "core/prepare.h"
#include "core/printer.h"
#include "stats/stats.h"
#include "storage/snapshot.h"

namespace {

constexpr char kUsage[] =
    "usage: iodb_eval DB_FILE [QUERY] [--query-file=PATH] "
    "[--db-snapshot=PATH] [--semantics=...] [--engine=...] "
    "[--costing=on|off] [--countermodel] [--explain]; QUERY may be '-' to "
    "read from stdin; --db-snapshot replaces DB_FILE";

int Fail(const std::string& message) {
  std::fprintf(stderr, "iodb_eval: %s\n", message.c_str());
  return 2;
}

std::string ReadAll(std::istream& in) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iodb;
  if (argc < 2) return Fail(kUsage);

  EntailOptions options;
  bool explain = false;
  bool costing = true;
  std::string db_file;
  std::string db_snapshot;
  std::string query_arg;
  std::string query_file;
  int positionals = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--countermodel") {
      options.want_countermodel = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg.rfind("--query-file=", 0) == 0) {
      query_file = arg.substr(13);
      if (query_file.empty()) return Fail("--query-file needs a path");
    } else if (arg.rfind("--db-snapshot=", 0) == 0) {
      db_snapshot = arg.substr(14);
      if (db_snapshot.empty()) return Fail("--db-snapshot needs a path");
    } else if (arg.rfind("--semantics=", 0) == 0) {
      std::string value = arg.substr(12);
      std::optional<OrderSemantics> semantics = ParseOrderSemantics(value);
      if (!semantics.has_value()) {
        return Fail("unknown semantics '" + value + "'");
      }
      options.semantics = *semantics;
    } else if (arg.rfind("--engine=", 0) == 0) {
      std::string value = arg.substr(9);
      std::optional<EngineKind> kind = ParseEngineKind(value);
      if (!kind.has_value()) return Fail("unknown engine '" + value + "'");
      options.engine = *kind;
    } else if (arg.rfind("--costing=", 0) == 0) {
      std::string value = arg.substr(10);
      if (value == "on") {
        costing = true;
      } else if (value == "off") {
        costing = false;
      } else {
        return Fail("bad costing value '" + value + "' (want on|off)");
      }
    } else if (arg.rfind("--", 0) == 0 && arg != "-") {
      return Fail("unknown flag '" + arg + "'");
    } else if (positionals == 0 && db_snapshot.empty()) {
      // Without --db-snapshot the first positional is the database
      // text file; with it, every positional is query text.
      db_file = arg;
      ++positionals;
    } else if (query_arg.empty()) {
      query_arg = arg;
      ++positionals;
    } else {
      return Fail(kUsage);
    }
  }
  if (db_file.empty() && db_snapshot.empty()) return Fail(kUsage);
  if (!db_snapshot.empty() && !db_file.empty()) {
    // --db-snapshot appeared after a positional: that positional was
    // really the query.
    if (!query_arg.empty()) return Fail(kUsage);
    query_arg = db_file;
    db_file.clear();
  }

  // Resolve the query text from its single source; a positional '-' is
  // shorthand for --query-file=-.
  if (!query_file.empty() && !query_arg.empty()) {
    return Fail("pass either QUERY or --query-file, not both");
  }
  if (query_arg == "-") {
    query_file = "-";
    query_arg.clear();
  }
  std::string query_text;
  if (query_file == "-") {
    query_text = ReadAll(std::cin);
  } else if (!query_file.empty()) {
    std::ifstream qfile(query_file);
    if (!qfile) return Fail("cannot open " + query_file);
    query_text = ReadAll(qfile);
  } else if (!query_arg.empty()) {
    query_text = query_arg;
  } else {
    return Fail(kUsage);
  }

  // Resolve the database: binary snapshot (vocabulary restored from the
  // file, no text parse) or parser-format text.
  VocabularyPtr vocab;
  std::optional<Result<Database>> opened;
  if (!db_snapshot.empty()) {
    opened = storage::OpenSnapshot(db_snapshot);
    if (!opened->ok()) {
      return Fail("snapshot: " + opened->status().ToString());
    }
    vocab = opened->value().vocab();
  } else {
    std::ifstream file(db_file);
    if (!file) return Fail("cannot open " + db_file);
    vocab = std::make_shared<Vocabulary>();
    opened = ParseDatabase(ReadAll(file), vocab);
    if (!opened->ok()) {
      return Fail("database: " + opened->status().ToString());
    }
  }
  Result<Database>& db = *opened;
  Result<Query> query = ParseQuery(query_text, vocab);
  if (!query.ok()) return Fail("query: " + query.status().ToString());

  if (costing) options.planner = stats::PlannerFor(db.value());
  Result<PreparedQuery> prepared = Prepare(vocab, query.value(), options);
  if (!prepared.ok()) return Fail(prepared.status().ToString());
  if (explain) std::printf("%s", prepared.value().Explain().c_str());

  Result<EntailResult> result = prepared.value().Evaluate(db.value());
  if (!result.ok()) return Fail(result.status().ToString());

  std::printf("%s  [engine: %s, semantics: %s]\n",
              result.value().entailed ? "ENTAILED" : "NOT ENTAILED",
              EngineKindName(result.value().engine_used),
              OrderSemanticsName(options.semantics));
  if (options.want_countermodel && !result.value().entailed &&
      result.value().countermodel.has_value()) {
    std::printf("countermodel: %s\n",
                result.value().countermodel->ToString().c_str());
  }
  if (explain) {
    std::printf("%s",
                prepared.value().ExplainEvaluation(result.value()).c_str());
  }
  return result.value().entailed ? 0 : 1;
}
