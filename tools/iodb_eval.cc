// iodb_eval: command-line entailment checker.
//
// Usage:
//   iodb_eval DB_FILE [QUERY] [--query-file=PATH]
//             [--semantics=finite|integer|rational]
//             [--engine=auto|brute-force|path-decomposition|bounded-width
//                     |disjunctive-search]
//             [--countermodel] [--explain]
//
// Reads a database in the parser's text format from DB_FILE and evaluates
// the query (also text format) against it. The query comes from exactly
// one source: the QUERY argument, `-` to read it from stdin, or
// --query-file=PATH. --explain prints the compiled plan (passes with
// provenance, per-disjunct classification) before the verdict and the
// evaluation work counters (models enumerated, incremental push/pop
// operations, index probes, assignments) after it. Engine
// names are the ones printed by the tool itself (EngineKindName), so
// output and flags round-trip; the historical shorthands "paths" and
// "disjunctive" are still accepted. Exit code 0 = entailed, 1 = not
// entailed, 2 = error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "core/parser.h"
#include "core/prepare.h"
#include "core/printer.h"

namespace {

constexpr char kUsage[] =
    "usage: iodb_eval DB_FILE [QUERY] [--query-file=PATH] "
    "[--semantics=...] [--engine=...] [--countermodel] [--explain]; "
    "QUERY may be '-' to read from stdin";

int Fail(const std::string& message) {
  std::fprintf(stderr, "iodb_eval: %s\n", message.c_str());
  return 2;
}

std::string ReadAll(std::istream& in) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iodb;
  if (argc < 2) return Fail(kUsage);

  std::ifstream file(argv[1]);
  if (!file) return Fail(std::string("cannot open ") + argv[1]);
  const std::string db_text = ReadAll(file);

  EntailOptions options;
  bool explain = false;
  std::string query_arg;
  std::string query_file;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--countermodel") {
      options.want_countermodel = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg.rfind("--query-file=", 0) == 0) {
      query_file = arg.substr(13);
      if (query_file.empty()) return Fail("--query-file needs a path");
    } else if (arg.rfind("--semantics=", 0) == 0) {
      std::string value = arg.substr(12);
      std::optional<OrderSemantics> semantics = ParseOrderSemantics(value);
      if (!semantics.has_value()) {
        return Fail("unknown semantics '" + value + "'");
      }
      options.semantics = *semantics;
    } else if (arg.rfind("--engine=", 0) == 0) {
      std::string value = arg.substr(9);
      std::optional<EngineKind> kind = ParseEngineKind(value);
      if (!kind.has_value()) return Fail("unknown engine '" + value + "'");
      options.engine = *kind;
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown flag '" + arg + "'");
    } else if (query_arg.empty()) {
      query_arg = arg;
    } else {
      return Fail(kUsage);
    }
  }

  // Resolve the query text from its single source; a positional '-' is
  // shorthand for --query-file=-.
  if (!query_file.empty() && !query_arg.empty()) {
    return Fail("pass either QUERY or --query-file, not both");
  }
  if (query_arg == "-") {
    query_file = "-";
    query_arg.clear();
  }
  std::string query_text;
  if (query_file == "-") {
    query_text = ReadAll(std::cin);
  } else if (!query_file.empty()) {
    std::ifstream qfile(query_file);
    if (!qfile) return Fail("cannot open " + query_file);
    query_text = ReadAll(qfile);
  } else if (!query_arg.empty()) {
    query_text = query_arg;
  } else {
    return Fail(kUsage);
  }

  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(db_text, vocab);
  if (!db.ok()) return Fail("database: " + db.status().ToString());
  Result<Query> query = ParseQuery(query_text, vocab);
  if (!query.ok()) return Fail("query: " + query.status().ToString());

  Result<PreparedQuery> prepared = Prepare(vocab, query.value(), options);
  if (!prepared.ok()) return Fail(prepared.status().ToString());
  if (explain) std::printf("%s", prepared.value().Explain().c_str());

  Result<EntailResult> result = prepared.value().Evaluate(db.value());
  if (!result.ok()) return Fail(result.status().ToString());

  std::printf("%s  [engine: %s, semantics: %s]\n",
              result.value().entailed ? "ENTAILED" : "NOT ENTAILED",
              EngineKindName(result.value().engine_used),
              OrderSemanticsName(options.semantics));
  if (options.want_countermodel && !result.value().entailed &&
      result.value().countermodel.has_value()) {
    std::printf("countermodel: %s\n",
                result.value().countermodel->ToString().c_str());
  }
  if (explain) {
    std::printf("%s",
                prepared.value().ExplainEvaluation(result.value()).c_str());
  }
  return result.value().entailed ? 0 : 1;
}
