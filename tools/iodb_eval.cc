// iodb_eval: command-line entailment checker.
//
// Usage:
//   iodb_eval DB_FILE QUERY [--semantics=finite|integer|rational]
//             [--engine=auto|brute-force|paths|bounded-width|disjunctive]
//             [--countermodel]
//
// Reads a database in the parser's text format from DB_FILE, evaluates the
// query (also text format) and prints the verdict. Exit code 0 = entailed,
// 1 = not entailed, 2 = error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "core/parser.h"
#include "core/printer.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "iodb_eval: %s\n", message.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iodb;
  if (argc < 3) {
    return Fail(
        "usage: iodb_eval DB_FILE QUERY [--semantics=...] [--engine=...] "
        "[--countermodel]");
  }

  std::ifstream file(argv[1]);
  if (!file) return Fail(std::string("cannot open ") + argv[1]);
  std::stringstream buffer;
  buffer << file.rdbuf();

  EntailOptions options;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--countermodel") {
      options.want_countermodel = true;
    } else if (arg.rfind("--semantics=", 0) == 0) {
      std::string value = arg.substr(12);
      if (value == "finite") {
        options.semantics = OrderSemantics::kFinite;
      } else if (value == "integer") {
        options.semantics = OrderSemantics::kInteger;
      } else if (value == "rational") {
        options.semantics = OrderSemantics::kRational;
      } else {
        return Fail("unknown semantics '" + value + "'");
      }
    } else if (arg.rfind("--engine=", 0) == 0) {
      std::string value = arg.substr(9);
      if (value == "auto") {
        options.engine = EngineKind::kAuto;
      } else if (value == "brute-force") {
        options.engine = EngineKind::kBruteForce;
      } else if (value == "paths") {
        options.engine = EngineKind::kPathDecomposition;
      } else if (value == "bounded-width") {
        options.engine = EngineKind::kBoundedWidth;
      } else if (value == "disjunctive") {
        options.engine = EngineKind::kDisjunctiveSearch;
      } else {
        return Fail("unknown engine '" + value + "'");
      }
    } else {
      return Fail("unknown flag '" + arg + "'");
    }
  }

  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(buffer.str(), vocab);
  if (!db.ok()) return Fail("database: " + db.status().ToString());
  Result<Query> query = ParseQuery(argv[2], vocab);
  if (!query.ok()) return Fail("query: " + query.status().ToString());

  Result<EntailResult> result = Entails(db.value(), query.value(), options);
  if (!result.ok()) return Fail(result.status().ToString());

  std::printf("%s  [engine: %s, semantics: %s]\n",
              result.value().entailed ? "ENTAILED" : "NOT ENTAILED",
              EngineKindName(result.value().engine_used),
              OrderSemanticsName(options.semantics));
  if (options.want_countermodel && !result.value().entailed &&
      result.value().countermodel.has_value()) {
    std::printf("countermodel: %s\n",
                result.value().countermodel->ToString().c_str());
  }
  return result.value().entailed ? 0 : 1;
}
