# CLI test for iodb_eval, run via ctest as
#   cmake -DIODB_EVAL=<binary> -DWORK_DIR=<dir> -P iodb_eval_test.cmake
#
# Checks the documented contract: exit 0 + "ENTAILED" for an entailed query,
# exit 1 + "NOT ENTAILED" otherwise, exit 2 for usage/parse errors.

if(NOT DEFINED IODB_EVAL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DIODB_EVAL=<binary> -DWORK_DIR=<dir>")
endif()

set(db "${WORK_DIR}/iodb_eval_cli.db")
file(WRITE "${db}" "P(u)\nQ(v)\nu < v\n")

function(expect_run expected_rc output_regex)
  execute_process(COMMAND ${IODB_EVAL} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR "iodb_eval ${ARGN}: exit ${rc}, want ${expected_rc}\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT "${out}${err}" MATCHES "${output_regex}")
    message(FATAL_ERROR "iodb_eval ${ARGN}: output does not match "
      "'${output_regex}'\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# P(u) < Q(v) is asserted, so the ordered pattern is certain.
expect_run(0 "^ENTAILED"
  "${db}" "exists t1 t2: P(t1) & t1 < t2 & Q(t2)")

# The reversed pattern holds in no minimal completion.
expect_run(1 "^NOT ENTAILED"
  "${db}" "exists t1 t2: Q(t1) & t1 < t2 & P(t2)")

# Engine/semantics flags parse and still produce the verdict.
expect_run(0 "^ENTAILED.*brute-force"
  "${db}" "exists t1 t2: P(t1) & t1 < t2 & Q(t2)"
  "--engine=brute-force" "--semantics=integer")

# Error paths: missing arguments, unknown flag, unreadable database.
expect_run(2 "usage:" "${db}")
expect_run(2 "unknown flag" "${db}" "exists t: P(t)" "--bogus")
expect_run(2 "cannot open" "${WORK_DIR}/no_such_file.db" "exists t: P(t)")

message(STATUS "iodb_eval CLI test passed")
