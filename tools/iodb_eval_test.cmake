# CLI test for iodb_eval, run via ctest as
#   cmake -DIODB_EVAL=<binary> -DWORK_DIR=<dir> -P iodb_eval_test.cmake
#
# Checks the documented contract: exit 0 + "ENTAILED" for an entailed query,
# exit 1 + "NOT ENTAILED" otherwise, exit 2 for usage/parse errors.

if(NOT DEFINED IODB_EVAL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DIODB_EVAL=<binary> -DWORK_DIR=<dir>")
endif()

set(db "${WORK_DIR}/iodb_eval_cli.db")
file(WRITE "${db}" "P(u)\nQ(v)\nu < v\n")

function(expect_run expected_rc output_regex)
  execute_process(COMMAND ${IODB_EVAL} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR "iodb_eval ${ARGN}: exit ${rc}, want ${expected_rc}\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT "${out}${err}" MATCHES "${output_regex}")
    message(FATAL_ERROR "iodb_eval ${ARGN}: output does not match "
      "'${output_regex}'\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# P(u) < Q(v) is asserted, so the ordered pattern is certain.
expect_run(0 "^ENTAILED"
  "${db}" "exists t1 t2: P(t1) & t1 < t2 & Q(t2)")

# The reversed pattern holds in no minimal completion.
expect_run(1 "^NOT ENTAILED"
  "${db}" "exists t1 t2: Q(t1) & t1 < t2 & P(t2)")

# Engine/semantics flags parse and still produce the verdict.
expect_run(0 "^ENTAILED.*brute-force"
  "${db}" "exists t1 t2: P(t1) & t1 < t2 & Q(t2)"
  "--engine=brute-force" "--semantics=integer")

# Engine names round-trip: the canonical name printed in the output is
# accepted back as a flag value (alongside the historical shorthand).
expect_run(0 "^ENTAILED.*path-decomposition"
  "${db}" "exists t1 t2: P(t1) & t1 < t2 & Q(t2)"
  "--engine=path-decomposition")
expect_run(0 "^ENTAILED.*path-decomposition"
  "${db}" "exists t1 t2: P(t1) & t1 < t2 & Q(t2)" "--engine=paths")

# The query can come from a file ...
set(query_file "${WORK_DIR}/iodb_eval_cli.query")
file(WRITE "${query_file}" "exists t1 t2: P(t1) & t1 < t2 & Q(t2)\n")
expect_run(0 "^ENTAILED" "${db}" "--query-file=${query_file}")

# ... or from stdin via '-'.
execute_process(COMMAND ${IODB_EVAL} "${db}" "-"
  INPUT_FILE "${query_file}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT "${out}" MATCHES "^ENTAILED")
  message(FATAL_ERROR "iodb_eval stdin query: exit ${rc}\n"
    "stdout: ${out}\nstderr: ${err}")
endif()

# --explain prints the compiled plan (passes + dispatch) before the verdict.
expect_run(0 "passes:.*engine-classification.*dispatch: bounded-width.*ENTAILED"
  "${db}" "exists t1 t2: P(t1) & t1 < t2 & Q(t2)" "--explain")

# Error paths: missing arguments, unknown flag, unreadable database,
# conflicting query sources.
expect_run(2 "usage:" "${db}")
expect_run(2 "unknown flag" "${db}" "exists t: P(t)" "--bogus")
expect_run(2 "cannot open" "${WORK_DIR}/no_such_file.db" "exists t: P(t)")
expect_run(2 "not both" "${db}" "exists t: P(t)" "--query-file=${query_file}")
expect_run(2 "unknown engine" "${db}" "exists t: P(t)" "--engine=warp")

message(STATUS "iodb_eval CLI test passed")
