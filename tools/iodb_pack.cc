// iodb_pack: snapshot pack/unpack/inspect/compact CLI for the storage
// layer.
//
// Usage:
//   iodb_pack pack DB_TEXT_FILE OUT_SNAPSHOT
//       Parses a database in the parser's text format and writes a
//       binary snapshot (docs/SNAPSHOT_FORMAT.md).
//   iodb_pack unpack SNAPSHOT [OUT_TEXT_FILE]
//       Decodes a snapshot back to the text format (stdout by default).
//       Predicate declarations are emitted first, so the output parses
//       back even for predicates the fact lines alone would mis-infer.
//   iodb_pack inspect SNAPSHOT
//       Prints the header, identity, summary counts and the section
//       table (offsets, lengths, checksums). Verifies every checksum.
//   iodb_pack compact DIR NAME
//       Opens the durable registry at DIR and folds NAME's write-ahead
//       log into a fresh snapshot.
//
// Exit code 0 on success, 2 on any error.

#include <cstdio>
#include <fstream>
#include <string>

#include "core/parser.h"
#include "core/printer.h"
#include "storage/durable_registry.h"
#include "storage/snapshot.h"

namespace {

using namespace iodb;

constexpr char kUsage[] =
    "usage: iodb_pack pack DB_TEXT_FILE OUT_SNAPSHOT\n"
    "       iodb_pack unpack SNAPSHOT [OUT_TEXT_FILE]\n"
    "       iodb_pack inspect SNAPSHOT\n"
    "       iodb_pack compact DIR NAME";

int Fail(const std::string& message) {
  std::fprintf(stderr, "iodb_pack: %s\n", message.c_str());
  return 2;
}

// Text form with predicate declarations prepended: `P(u)` alone would
// re-infer u as an object constant if P is an order predicate with no
// order atoms, so unpack always declares signatures explicitly.
std::string RenderWithDeclarations(const Database& db) {
  std::string out;
  const Vocabulary& vocab = *db.vocab();
  for (int p = 0; p < vocab.num_predicates(); ++p) {
    const PredicateInfo& info = vocab.predicate(p);
    out += "pred " + info.name + "(";
    for (int a = 0; a < info.arity(); ++a) {
      if (a > 0) out += ", ";
      out += SortName(info.arg_sorts[a]);
    }
    out += ")\n";
  }
  out += ToString(db);
  return out;
}

int RunPack(const std::string& text_path, const std::string& out_path) {
  std::ifstream file(text_path);
  if (!file) return Fail("cannot open " + text_path);
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(text, vocab);
  if (!db.ok()) return Fail("database: " + db.status().ToString());
  Status status = storage::SaveSnapshot(db.value(), out_path);
  if (!status.ok()) return Fail(status.ToString());
  Result<storage::SnapshotInfo> info =
      storage::InspectSnapshotFile(out_path);
  if (!info.ok()) return Fail(info.status().ToString());
  std::printf("packed %s -> %s (%llu bytes, %llu atoms)\n", text_path.c_str(),
              out_path.c_str(),
              static_cast<unsigned long long>(info.value().file_bytes),
              static_cast<unsigned long long>(
                  info.value().num_proper_atoms +
                  info.value().num_order_atoms +
                  info.value().num_inequalities));
  return 0;
}

int RunUnpack(const std::string& snap_path, const std::string& out_path) {
  Result<Database> db = storage::OpenSnapshot(snap_path);
  if (!db.ok()) return Fail(db.status().ToString());
  const std::string text = RenderWithDeclarations(db.value());
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) return Fail("cannot create " + out_path);
  out << text;
  out.flush();
  if (!out.good()) return Fail("error writing " + out_path);
  return 0;
}

int RunInspect(const std::string& snap_path) {
  Result<storage::SnapshotInfo> info =
      storage::InspectSnapshotFile(snap_path);
  if (!info.ok()) return Fail(info.status().ToString());
  std::fputs(info.value().ToString().c_str(), stdout);
  return 0;
}

int RunCompact(const std::string& dir, const std::string& name) {
  Result<std::unique_ptr<storage::DurableRegistry>> registry =
      storage::DurableRegistry::Open(dir);
  if (!registry.ok()) return Fail(registry.status().ToString());
  Result<DbInfo> info = registry.value()->Compact(name);
  if (!info.ok()) return Fail(info.status().ToString());
  std::printf("compacted db=%s atoms=%d uid=%llu revision=%llu\n",
              info.value().name.c_str(), info.value().atoms,
              static_cast<unsigned long long>(info.value().uid),
              static_cast<unsigned long long>(info.value().revision));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Fail(kUsage);
  const std::string command = argv[1];
  if (command == "pack") {
    if (argc != 4) return Fail(kUsage);
    return RunPack(argv[2], argv[3]);
  }
  if (command == "unpack") {
    if (argc != 3 && argc != 4) return Fail(kUsage);
    return RunUnpack(argv[2], argc == 4 ? argv[3] : "");
  }
  if (command == "inspect") {
    if (argc != 3) return Fail(kUsage);
    return RunInspect(argv[2]);
  }
  if (command == "compact") {
    if (argc != 4) return Fail(kUsage);
    return RunCompact(argv[2], argv[3]);
  }
  return Fail(std::string("unknown command '") + command + "'\n" + kUsage);
}
