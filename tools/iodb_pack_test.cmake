# CLI test for iodb_pack and the --db-snapshot flags of iodb_eval and
# iodb_replay, run via ctest as
#   cmake -DIODB_PACK=<bin> -DIODB_EVAL=<bin> -DIODB_SERVE=<bin>
#         -DIODB_REPLAY=<bin> -DWORK_DIR=<dir> -P iodb_pack_test.cmake
#
# pack -> inspect -> unpack must round-trip; iodb_eval and iodb_replay
# must answer from the snapshot without the text parser; compact must
# fold a registry WAL into its snapshot; and every malformed input must
# exit 2 with a diagnostic, never crash.

if(NOT DEFINED IODB_PACK OR NOT DEFINED IODB_EVAL OR NOT DEFINED IODB_SERVE
   OR NOT DEFINED IODB_REPLAY OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DIODB_PACK/-DIODB_EVAL/-DIODB_SERVE/"
    "-DIODB_REPLAY=<binary> -DWORK_DIR=<dir>")
endif()

set(db_txt "${WORK_DIR}/iodb_pack_cli.db.txt")
set(db_snap "${WORK_DIR}/iodb_pack_cli.db.snap")
set(query "exists t1 t2: P(t1) & t1 < t2 & Q(t2)")
file(WRITE "${db_txt}" "P(u)
Q(v)
u < v
")

# --- pack -------------------------------------------------------------------
execute_process(COMMAND ${IODB_PACK} pack "${db_txt}" "${db_snap}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT "${out}" MATCHES "packed .* \\(.* bytes, 3 atoms\\)")
  message(FATAL_ERROR "iodb_pack pack: exit ${rc}\n${out}\n${err}")
endif()

# --- inspect ----------------------------------------------------------------
execute_process(COMMAND ${IODB_PACK} inspect "${db_snap}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "iodb_pack inspect: exit ${rc}\n${err}")
endif()
foreach(pattern
    "format-version +2"
    "predicates +2"
    "order-constants +2"
    "proper-atoms +2"
    "order-atoms +1"
    "section vocabulary "
    "section fact-segments "
    "section identity "
    "section statistics "
    "statistics +persisted \\(fresh\\)"
    "order-graph +points=2")
  if(NOT "${out}" MATCHES "${pattern}")
    message(FATAL_ERROR "inspect output missing '${pattern}':\n${out}")
  endif()
endforeach()

# --- unpack: back to text, still the same database --------------------------
set(unpacked "${WORK_DIR}/iodb_pack_cli.unpacked.txt")
execute_process(COMMAND ${IODB_PACK} unpack "${db_snap}" "${unpacked}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "iodb_pack unpack: exit ${rc}\n${err}")
endif()
file(READ "${unpacked}" unpacked_text)
if(NOT "${unpacked_text}" MATCHES "pred P\\(order\\)"
   OR NOT "${unpacked_text}" MATCHES "u < v")
  message(FATAL_ERROR "unpack output unexpected:\n${unpacked_text}")
endif()
execute_process(COMMAND ${IODB_EVAL} "${unpacked}" "${query}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT "${out}" MATCHES "^ENTAILED")
  message(FATAL_ERROR "eval of unpacked text: exit ${rc}\n${out}\n${err}")
endif()

# unpack(pack(unpack(snap))) is textually stable.
set(repacked "${WORK_DIR}/iodb_pack_cli.repacked.snap")
set(reunpacked "${WORK_DIR}/iodb_pack_cli.reunpacked.txt")
execute_process(COMMAND ${IODB_PACK} pack "${unpacked}" "${repacked}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "re-pack: exit ${rc}\n${err}")
endif()
execute_process(COMMAND ${IODB_PACK} unpack "${repacked}" "${reunpacked}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
file(READ "${reunpacked}" reunpacked_text)
if(NOT rc EQUAL 0 OR NOT "${reunpacked_text}" STREQUAL "${unpacked_text}")
  message(FATAL_ERROR "unpack/pack/unpack not stable:\n--- first ---\n"
    "${unpacked_text}\n--- second ---\n${reunpacked_text}")
endif()

# --- iodb_eval --db-snapshot ------------------------------------------------
execute_process(COMMAND ${IODB_EVAL} --db-snapshot=${db_snap} "${query}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT "${out}" MATCHES "^ENTAILED")
  message(FATAL_ERROR "iodb_eval --db-snapshot: exit ${rc}\n${out}\n${err}")
endif()
execute_process(COMMAND ${IODB_EVAL} --db-snapshot=${db_snap}
    "exists t1 t2: Q(t1) & t1 < t2 & P(t2)"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1 OR NOT "${out}" MATCHES "^NOT ENTAILED")
  message(FATAL_ERROR
    "iodb_eval --db-snapshot negative: exit ${rc}\n${out}\n${err}")
endif()

# --- iodb_replay --db-snapshot ----------------------------------------------
set(trace "${WORK_DIR}/iodb_pack_cli.trace.json")
file(WRITE "${trace}" "[
  {\"op\": \"eval\", \"db\": \"snapdb\", \"query\": \"${query}\"}
]
")
execute_process(COMMAND ${IODB_REPLAY} "${trace}"
    --db-snapshot=snapdb=${db_snap}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0
   OR NOT "${out}" MATCHES "replayed 1 request"
   OR NOT "${out}" MATCHES "verdicts: 1 entailed, 0 not entailed, 0 error")
  message(FATAL_ERROR "iodb_replay --db-snapshot: exit ${rc}\n${out}\n${err}")
endif()

# --- compact ----------------------------------------------------------------
# Build a registry with a WAL via a scripted iodb_serve session, then
# fold the log and check the restarted server still sees the appends.
set(store "${WORK_DIR}/iodb_pack_cli.store")
file(REMOVE_RECURSE "${store}")
set(session "${WORK_DIR}/iodb_pack_cli.session")
file(WRITE "${session}" "LOAD base
P(u)
Q(v)
u < v
END
APPEND base
R(w)
v < w
END
QUIT
")
execute_process(COMMAND ${IODB_SERVE} --data-dir=${store}
  INPUT_FILE "${session}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve session for compact: exit ${rc}\n${out}\n${err}")
endif()
file(SIZE "${store}/base.wal" wal_before)
execute_process(COMMAND ${IODB_PACK} compact "${store}" base
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT "${out}" MATCHES "compacted db=base atoms=5")
  message(FATAL_ERROR "iodb_pack compact: exit ${rc}\n${out}\n${err}")
endif()
file(SIZE "${store}/base.wal" wal_after)
if(NOT wal_after LESS wal_before)
  message(FATAL_ERROR
    "compact did not shrink the WAL (${wal_before} -> ${wal_after})")
endif()
set(check "${WORK_DIR}/iodb_pack_cli.check")
file(WRITE "${check}" "EVAL base exists t: R(t)
QUIT
")
execute_process(COMMAND ${IODB_SERVE} --data-dir=${store}
  INPUT_FILE "${check}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT "${out}" MATCHES "ENTAILED")
  message(FATAL_ERROR "post-compact restart: exit ${rc}\n${out}\n${err}")
endif()

# --- malformed inputs exit 2 ------------------------------------------------
execute_process(COMMAND ${IODB_PACK} inspect "${db_txt}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT "${err}" MATCHES "magic")
  message(FATAL_ERROR "inspect of text file: exit ${rc}, want 2\n${err}")
endif()
execute_process(COMMAND ${IODB_EVAL} --db-snapshot=${db_txt} "${query}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT "${err}" MATCHES "snapshot")
  message(FATAL_ERROR
    "iodb_eval --db-snapshot of text file: exit ${rc}, want 2\n${err}")
endif()
execute_process(COMMAND ${IODB_PACK} frobnicate
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT "${err}" MATCHES "unknown command")
  message(FATAL_ERROR "iodb_pack frobnicate: exit ${rc}, want 2\n${err}")
endif()
execute_process(COMMAND ${IODB_PACK} compact "${store}" nosuchdb
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT "${err}" MATCHES "unknown database")
  message(FATAL_ERROR "compact unknown db: exit ${rc}, want 2\n${err}")
endif()

message(STATUS "iodb_pack CLI test passed")
