// iodb_replay: replays a JSON trace of requests through the
// EvaluationService and reports throughput and latency percentiles
// (the bench-style counterpart of iodb_serve — same requests, measured).
//
// Trace format: a JSON array of operation objects.
//
//   {"op": "load", "db": "<name>", "text": "<parser database text>"}
//   {"op": "eval", "db": "<name>", "query": "<parser query text>",
//    "semantics": "finite|integer|rational",   (optional)
//    "engine": "<engine name>",                (optional)
//    "countermodel": true|false,               (optional)
//    "costing": true|false,                    (optional; cost-based plan)
//    "deadline_ms": N,                         (optional; governance)
//    "step_budget": N}                         (optional; governance)
//
// Loads execute up front (untimed); evals replay in order. Usage:
//
//   iodb_replay TRACE.json [--batch=N] [--repeat=K]
//               [--workers=N] [--plan-cache=N] [--trace-plans]
//               [--db-snapshot=NAME=PATH ...]
//
// --trace-plans prints one plan-choice line per request of the first
// round ("plan: #<i> db=<name> engine=<engine> schedule=<summary>"), the
// observable record of what the cost-based planner picked per request.
//
// --db-snapshot registers the binary snapshot at PATH (written by
// iodb_pack or the durable registry) under NAME before the trace's own
// loads run, so a replay against a large database skips the text parser
// entirely. The flag repeats.
//
// --batch=N groups consecutive evals into batches of N served through the
// worker pool (default 1: individual Eval calls); a batched request's
// latency is its batch's duration. --repeat=K replays the eval sequence K
// times, so steady-state cached-plan throughput is measurable separately
// from the cold first pass. Exit code: 0 on success (even if some
// requests fail — failures are counted and reported), 2 on a malformed
// trace or flags.
//
// Reporting: the "verdicts:" line counts every non-ok response as an
// error (stable across versions); the "outcomes:" line splits responses
// by status — ok / deadline-exceeded / cancelled / other errors — and
// the latency percentiles cover only requests that ran to completion
// (an exhausted request's latency is its budget, not the service's);
// when no request completed, the percentiles print "n/a".

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/semantics.h"
#include "service/service.h"
#include "storage/snapshot.h"

namespace {

using namespace iodb;

int Fail(const std::string& message) {
  std::fprintf(stderr, "iodb_replay: %s\n", message.c_str());
  return 2;
}

// --- Minimal JSON reader ---------------------------------------------------
// Supports exactly what traces need: objects, arrays, strings (with the
// common escapes), numbers, booleans, null. No dependencies.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& message) {
    return Status::InvalidArgument("JSON error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    if (Consume('}')) return value;
    while (true) {
      SkipSpace();
      Result<JsonValue> key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':'");
      Result<JsonValue> member = ParseValue();
      if (!member.ok()) return member.status();
      value.object[key.value().string] = std::move(member.value());
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    if (Consume(']')) return value;
    while (true) {
      Result<JsonValue> element = ParseValue();
      if (!element.ok()) return element.status();
      value.array.push_back(std::move(element.value()));
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        value.string += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': value.string += '"'; break;
        case '\\': value.string += '\\'; break;
        case '/': value.string += '/'; break;
        case 'n': value.string += '\n'; break;
        case 't': value.string += '\t'; break;
        case 'r': value.string += '\r'; break;
        case 'b': value.string += '\b'; break;
        case 'f': value.string += '\f'; break;
        default: return Error("unsupported escape '\\" + std::string(1, e) +
                              "'");
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return value;
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return value;
    }
    return Error("expected boolean");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Error("expected null");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    // The character scan accepts non-numbers like "-" or "1e999"; stod is
    // the actual validator, and its failure is a trace error, not a crash.
    try {
      value.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return Error("malformed number");
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Trace interpretation --------------------------------------------------

const JsonValue* Field(const JsonValue& object, const std::string& name) {
  auto it = object.object.find(name);
  return it == object.object.end() ? nullptr : &it->second;
}

Result<std::string> StringField(const JsonValue& object,
                                const std::string& name) {
  const JsonValue* field = Field(object, name);
  if (field == nullptr || field->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("operation needs string field '" + name +
                                   "'");
  }
  return field->string;
}

// One parsed trace: the loads to apply up front and the evals to replay.
struct Trace {
  std::vector<std::pair<std::string, std::string>> loads;  // (name, text)
  std::vector<EvalRequest> evals;
};

Result<Trace> InterpretTrace(const JsonValue& root) {
  if (root.kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("trace must be a JSON array");
  }
  Trace trace;
  for (const JsonValue& op : root.array) {
    if (op.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("trace entries must be objects");
    }
    Result<std::string> kind = StringField(op, "op");
    if (!kind.ok()) return kind.status();
    Result<std::string> db = StringField(op, "db");
    if (!db.ok()) return db.status();
    if (kind.value() == "load") {
      Result<std::string> text = StringField(op, "text");
      if (!text.ok()) return text.status();
      trace.loads.emplace_back(db.value(), text.value());
    } else if (kind.value() == "eval") {
      EvalRequest request;
      request.db = db.value();
      Result<std::string> query = StringField(op, "query");
      if (!query.ok()) return query.status();
      request.query = query.value();
      if (const JsonValue* semantics = Field(op, "semantics")) {
        if (semantics->kind != JsonValue::Kind::kString) {
          return Status::InvalidArgument("'semantics' must be a string");
        }
        std::optional<OrderSemantics> parsed =
            ParseOrderSemantics(semantics->string);
        if (!parsed.has_value()) {
          return Status::InvalidArgument("unknown semantics '" +
                                         semantics->string + "'");
        }
        request.options.semantics = *parsed;
      }
      if (const JsonValue* engine = Field(op, "engine")) {
        if (engine->kind != JsonValue::Kind::kString) {
          return Status::InvalidArgument("'engine' must be a string");
        }
        std::optional<EngineKind> parsed = ParseEngineKind(engine->string);
        if (!parsed.has_value()) {
          return Status::InvalidArgument("unknown engine '" + engine->string +
                                         "'");
        }
        request.options.engine = *parsed;
      }
      if (const JsonValue* countermodel = Field(op, "countermodel")) {
        if (countermodel->kind != JsonValue::Kind::kBool) {
          return Status::InvalidArgument("'countermodel' must be a boolean");
        }
        request.options.want_countermodel = countermodel->boolean;
      }
      if (const JsonValue* costing = Field(op, "costing")) {
        if (costing->kind != JsonValue::Kind::kBool) {
          return Status::InvalidArgument("'costing' must be a boolean");
        }
        request.costing = costing->boolean ? 1 : 0;
      }
      if (const JsonValue* deadline = Field(op, "deadline_ms")) {
        if (deadline->kind != JsonValue::Kind::kNumber ||
            deadline->number < 0) {
          return Status::InvalidArgument(
              "'deadline_ms' must be a non-negative number");
        }
        request.deadline_ms = static_cast<long long>(deadline->number);
      }
      if (const JsonValue* steps = Field(op, "step_budget")) {
        if (steps->kind != JsonValue::Kind::kNumber || steps->number < 0) {
          return Status::InvalidArgument(
              "'step_budget' must be a non-negative number");
        }
        request.step_budget = static_cast<long long>(steps->number);
      }
      trace.evals.push_back(std::move(request));
    } else {
      return Status::InvalidArgument("unknown op '" + kind.value() + "'");
    }
  }
  return trace;
}

double Percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: iodb_replay TRACE.json [--batch=N] [--repeat=K] "
                "[--workers=N] [--plan-cache=N] [--trace-plans] "
                "[--db-snapshot=NAME=PATH ...]");
  }
  ServiceOptions options;
  int batch_size = 1;
  int repeat = 1;
  bool trace_plans = false;
  int plan_cache = static_cast<int>(options.plan_cache_capacity);
  std::vector<std::pair<std::string, std::string>> snapshots;  // (name, path)
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--batch=", 0) == 0) {
      batch_size = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.num_workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--plan-cache=", 0) == 0) {
      plan_cache = std::atoi(arg.c_str() + 13);
    } else if (arg == "--trace-plans") {
      trace_plans = true;
    } else if (arg.rfind("--db-snapshot=", 0) == 0) {
      const std::string value = arg.substr(14);
      const size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        return Fail("--db-snapshot needs NAME=PATH");
      }
      snapshots.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else {
      return Fail("unknown flag '" + arg + "'");
    }
  }
  if (batch_size <= 0 || repeat <= 0 || plan_cache <= 0) {
    return Fail("--batch, --repeat and --plan-cache must be positive");
  }
  options.plan_cache_capacity = static_cast<size_t>(plan_cache);

  std::ifstream file(argv[1]);
  if (!file) return Fail(std::string("cannot open ") + argv[1]);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  Result<JsonValue> root = JsonParser(text).Parse();
  if (!root.ok()) return Fail(root.status().ToString());
  Result<Trace> trace = InterpretTrace(root.value());
  if (!trace.ok()) return Fail(trace.status().ToString());
  if (trace.value().evals.empty()) return Fail("trace has no eval ops");

  EvaluationService service(options);
  for (const auto& [name, path] : snapshots) {
    Result<Database> db = storage::OpenSnapshotInto(path, service.vocab());
    if (!db.ok()) {
      return Fail("snapshot '" + path + "': " + db.status().ToString());
    }
    Result<DbInfo> info = service.Register(name, std::move(db.value()));
    if (!info.ok()) {
      return Fail("snapshot '" + name + "': " + info.status().ToString());
    }
  }
  for (const auto& [name, db_text] : trace.value().loads) {
    Result<DbInfo> info = service.Load(name, db_text);
    if (!info.ok()) {
      return Fail("load '" + name + "': " + info.status().ToString());
    }
  }

  using Clock = std::chrono::steady_clock;
  std::vector<double> latencies_us;
  long long entailed = 0, not_entailed = 0, errors = 0;
  long long deadline_exceeded = 0, cancelled = 0, other_errors = 0;
  const auto replay_start = Clock::now();
  for (int round = 0; round < repeat; ++round) {
    const std::vector<EvalRequest>& evals = trace.value().evals;
    for (size_t begin = 0; begin < evals.size();
         begin += static_cast<size_t>(batch_size)) {
      const size_t end =
          std::min(evals.size(), begin + static_cast<size_t>(batch_size));
      const auto start = Clock::now();
      std::vector<Result<EvalResponse>> responses;
      if (end - begin == 1 && batch_size == 1) {
        responses.push_back(service.Eval(evals[begin]));
      } else {
        responses = service.EvalBatch(
            std::span<const EvalRequest>(evals.data() + begin, end - begin));
      }
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - start)
              .count();
      if (trace_plans && round == 0) {
        for (size_t k = 0; k < responses.size(); ++k) {
          const size_t i = begin + k;
          if (responses[k].ok()) {
            std::printf("plan: #%zu db=%s engine=%s schedule=%s\n", i,
                        evals[i].db.c_str(),
                        EngineKindName(responses[k].value().engine_used),
                        responses[k].value().plan_summary.c_str());
          } else {
            std::printf("plan: #%zu db=%s error\n", i, evals[i].db.c_str());
          }
        }
      }
      for (const Result<EvalResponse>& response : responses) {
        if (!response.ok()) {
          ++errors;
          // Exhausted requests are excluded from the latency population:
          // their duration measures the configured budget, not the
          // service. Other errors (bad database, parse) stay in.
          switch (response.status().code()) {
            case StatusCode::kDeadlineExceeded:
              ++deadline_exceeded;
              continue;
            case StatusCode::kCancelled:
              ++cancelled;
              continue;
            default:
              ++other_errors;
              break;
          }
        } else if (response.value().entailed) {
          ++entailed;
        } else {
          ++not_entailed;
        }
        latencies_us.push_back(us);  // a request waits for its whole batch
      }
    }
  }
  const double total_s =
      std::chrono::duration<double>(Clock::now() - replay_start).count();

  std::sort(latencies_us.begin(), latencies_us.end());
  const long long total = entailed + not_entailed + errors;
  const ServiceStats stats = service.stats();
  std::printf("replayed %lld request(s) in %.3f s (%.1f req/s, batch=%d, "
              "repeat=%d)\n",
              total, total_s, total > 0 ? total / total_s : 0.0, batch_size,
              repeat);
  std::printf("verdicts: %lld entailed, %lld not entailed, %lld error(s)\n",
              entailed, not_entailed, errors);
  std::printf("outcomes: %lld ok, %lld deadline-exceeded, %lld cancelled, "
              "%lld error(s)\n",
              entailed + not_entailed, deadline_exceeded, cancelled,
              other_errors);
  if (latencies_us.empty()) {
    // Every request was excluded (exhausted or cancelled): there is no
    // latency population. "0.0" here would read as a real measurement.
    std::printf("latency us: p50=n/a p90=n/a p99=n/a max=n/a\n");
  } else {
    std::printf("latency us: p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
                Percentile(latencies_us, 0.50), Percentile(latencies_us, 0.90),
                Percentile(latencies_us, 0.99), latencies_us.back());
  }
  std::printf("plan cache: %lld hit(s), %lld miss(es), %lld eviction(s), "
              "%lld compiled\n",
              stats.plan_cache.hits, stats.plan_cache.misses,
              stats.plan_cache.evictions, stats.plans_compiled);
  return 0;
}
