// iodb_serve: line-oriented request server over the in-process
// EvaluationService (stdin/stdout; one process per client, inetd-style).
//
// Protocol (one command per line; blank lines and '#' comments ignored):
//
//   LOAD <name>          start loading a database; the following lines
//                        are parser-format database text, terminated by
//                        a line containing only "END"
//                        -> "OK db=<name> atoms=<n>"
//   EVAL <request>       <request> is the wire form of service/request.h:
//                        <db> [--semantics=...] [--engine=...]
//                        [--countermodel] [--explain] <query>
//                        -> verdict line "ENTAILED  [engine: ..., cache:
//                        hit|miss]", then optional "countermodel: ..."
//                        and explain lines
//   BATCH <n>            the next n lines are EVAL request lines, served
//                        as one batch through the worker pool
//                        -> n verdict lines, in request order
//   STATS                -> the service counters, one "name value" per
//                        line, terminated by "OK"
//   QUIT                 -> exit 0 (EOF does the same)
//
// Every failure is reported as a single "ERR <message>" line; the session
// continues. Flags: --workers=N (worker pool size, default: machine),
// --plan-cache=N (plan cache capacity, default 128).

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/service.h"
#include "util/strings.h"

namespace {

using namespace iodb;

void Err(const std::string& message) {
  std::printf("ERR %s\n", message.c_str());
}

// Prints the full response of one served request: the verdict line plus
// the optional countermodel and explain payloads.
void PrintResponse(const Result<EvalResponse>& response) {
  if (!response.ok()) {
    Err(response.status().ToString());
    return;
  }
  std::printf("%s\n", FormatResponseLine(response.value()).c_str());
  if (response.value().countermodel.has_value()) {
    std::printf("countermodel: %s\n",
                response.value().countermodel->ToString().c_str());
  }
  if (!response.value().explain.empty()) {
    std::printf("%s", response.value().explain.c_str());
  }
}

// Reads database text up to the "END" terminator; false on EOF.
bool ReadUntilEnd(std::istream& in, std::string* text) {
  std::string line;
  while (std::getline(in, line)) {
    if (std::string(StripWhitespace(line)) == "END") return true;
    *text += line;
    *text += '\n';
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      options.num_workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--plan-cache=", 0) == 0) {
      int capacity = std::atoi(arg.c_str() + 13);
      if (capacity <= 0) {
        std::fprintf(stderr, "iodb_serve: --plan-cache needs a positive "
                             "capacity\n");
        return 2;
      }
      options.plan_cache_capacity = static_cast<size_t>(capacity);
    } else {
      std::fprintf(stderr,
                   "usage: iodb_serve [--workers=N] [--plan-cache=N]\n");
      return 2;
    }
  }

  EvaluationService service(options);
  std::string line;
  while (std::getline(std::cin, line)) {
    std::string_view rest = StripWhitespace(line);
    if (rest.empty() || rest[0] == '#') continue;
    size_t space = rest.find(' ');
    std::string command(rest.substr(0, space));
    std::string args = space == std::string_view::npos
                           ? std::string()
                           : std::string(StripWhitespace(rest.substr(space)));

    if (command == "QUIT") {
      break;
    } else if (command == "LOAD") {
      if (args.empty()) {
        Err("LOAD needs a database name");
        continue;
      }
      std::string text;
      if (!ReadUntilEnd(std::cin, &text)) {
        Err("unterminated LOAD (missing END)");
        break;
      }
      Result<DbInfo> info = service.Load(args, text);
      if (!info.ok()) {
        Err(info.status().ToString());
      } else {
        std::printf("OK db=%s atoms=%d\n", info.value().name.c_str(),
                    info.value().atoms);
      }
    } else if (command == "EVAL") {
      Result<EvalRequest> request = ParseEvalRequest(args);
      if (!request.ok()) {
        Err(request.status().ToString());
        continue;
      }
      PrintResponse(service.Eval(request.value()));
    } else if (command == "BATCH") {
      // Bounded so a single protocol line cannot force a huge
      // pre-allocation; large workloads stream multiple batches.
      constexpr int kMaxBatch = 65536;
      int n = std::atoi(args.c_str());
      if (n <= 0 || n > kMaxBatch) {
        Err("BATCH needs a request count in [1, " +
            std::to_string(kMaxBatch) + "]");
        continue;
      }
      // Consume all n request lines BEFORE parsing: a parse failure must
      // not leave unread batch payload to be re-interpreted as protocol
      // commands.
      std::vector<std::string> request_lines(static_cast<size_t>(n));
      bool eof = false;
      for (int i = 0; i < n && !eof; ++i) {
        eof = !std::getline(std::cin, request_lines[static_cast<size_t>(i)]);
      }
      if (eof) {
        Err("unexpected EOF inside BATCH");
        return 0;
      }
      std::vector<EvalRequest> requests;
      bool parse_failed = false;
      for (int i = 0; i < n; ++i) {
        Result<EvalRequest> request =
            ParseEvalRequest(request_lines[static_cast<size_t>(i)]);
        if (!request.ok()) {
          // Abort the whole batch: slots after a dropped line would shift.
          if (!parse_failed) {
            Err("request " + std::to_string(i) + ": " +
                request.status().ToString());
          }
          parse_failed = true;
        } else {
          requests.push_back(std::move(request.value()));
        }
      }
      if (parse_failed) continue;
      for (const Result<EvalResponse>& response :
           service.EvalBatch(requests)) {
        PrintResponse(response);
      }
    } else if (command == "STATS") {
      std::printf("%sOK\n", service.stats().ToString().c_str());
    } else {
      Err("unknown command '" + command + "'");
    }
    std::fflush(stdout);
  }
  return 0;
}
