// iodb_serve: line-oriented request server over the in-process
// EvaluationService (stdin/stdout; one process per client, inetd-style).
//
// Protocol (one command per line; blank lines and '#' comments ignored):
//
//   LOAD <name>          start loading a database; the following lines
//                        are parser-format database text, terminated by
//                        a line containing only "END"
//                        -> "OK db=<name> atoms=<n>"
//                        With a durable registry open (--data-dir or
//                        OPEN), the database is persisted: a restarted
//                        server restores it under the same name with
//                        the same (uid, revision) identity.
//   APPEND <name>        append parser-format statements (same END
//                        terminator) to a registered database; with a
//                        registry open the mutation is logged to the
//                        database's write-ahead log first
//                        -> "OK db=<name> atoms=<n> revision=<r>"
//   OPEN <dir>           open (creating if needed) a durable registry;
//                        replaces the session's service with one
//                        restored from <dir>
//                        -> "OK dir=<dir> databases=<n>"
//   SAVE <name>          fold the write-ahead log of <name> into a
//                        fresh snapshot (registry required)
//                        -> "OK db=<name> atoms=<n>"
//   INFO [<name>]        -> "OK db=<name> atoms=<n> uid=<u> revision=<r>"
//                        or, with no name, the service identity:
//                        "OK databases=<n> vocab-uid=<u>"
//   EVAL <request>       <request> is the wire form of service/request.h:
//                        <db> [--semantics=...] [--engine=...]
//                        [--countermodel] [--explain] <query>
//                        -> verdict line "ENTAILED  [engine: ..., cache:
//                        hit|miss]", then optional "countermodel: ..."
//                        and explain lines
//   BATCH <n>            the next n lines are EVAL request lines, served
//                        as one batch through the worker pool
//                        -> n verdict lines, in request order
//   STATS                -> the service counters, one "name value" per
//                        line, terminated by "OK"
//   QUIT                 -> exit 0 (EOF does the same)
//
// Every failure is reported as a single "ERR <message>" line and the
// session continues; an unrecognized verb is the structured
// "ERR unknown-verb '<verb>'", a command line over the 1 MiB limit is
// "ERR line-too-long ...", and a request that exhausted its deadline /
// step budget / cancellation is "ERR deadline-exceeded <detail>" or
// "ERR cancelled <detail>". Flags: --workers=N (worker pool size,
// default: machine), --plan-cache=N (plan cache capacity, default 128),
// --data-dir=DIR (open a durable registry at startup),
// --wal-sync=none|commit|interval (WAL flush policy, default commit),
// --default-deadline-ms=N / --default-step-budget=N (governance applied
// to requests that set none of their own).
//
// Shutdown: SIGTERM / SIGINT (and QUIT / EOF) end the session cleanly —
// the registry's un-synced WAL appends are flushed and the process
// exits 0.

#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "service/service.h"
#include "storage/durable_registry.h"
#include "storage/wal.h"
#include "util/strings.h"

namespace {

using namespace iodb;

// Command lines (and BATCH request lines) over this limit are rejected
// with a structured error instead of being buffered without bound.
constexpr size_t kMaxLineBytes = size_t{1} << 20;

volatile std::sig_atomic_t g_shutdown = 0;

void OnShutdownSignal(int) { g_shutdown = 1; }

// SA_RESTART deliberately NOT set: the signal must interrupt a blocking
// stdin read so the serving loop observes g_shutdown and exits through
// the flush path (glibc's signal() would set SA_RESTART).
void InstallShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

void Err(const std::string& message) {
  std::printf("ERR %s\n", message.c_str());
}

// Prints the full response of one served request: the verdict line plus
// the optional countermodel and explain payloads. Budget exhaustion is
// rendered structured ("ERR deadline-exceeded ..."), so clients can
// retry-with-more-budget without parsing prose.
void PrintResponse(const Result<EvalResponse>& response) {
  if (!response.ok()) {
    const Status& status = response.status();
    if (status.code() == StatusCode::kDeadlineExceeded) {
      Err("deadline-exceeded " + status.message());
    } else if (status.code() == StatusCode::kCancelled) {
      Err("cancelled " + status.message());
    } else {
      Err(status.ToString());
    }
    return;
  }
  std::printf("%s\n", FormatResponseLine(response.value()).c_str());
  if (response.value().countermodel.has_value()) {
    std::printf("countermodel: %s\n",
                response.value().countermodel->ToString().c_str());
  }
  if (!response.value().explain.empty()) {
    std::printf("%s", response.value().explain.c_str());
  }
}

// Reads database text up to the "END" terminator; false on EOF.
bool ReadUntilEnd(std::istream& in, std::string* text) {
  std::string line;
  while (std::getline(in, line)) {
    if (std::string(StripWhitespace(line)) == "END") return true;
    *text += line;
    *text += '\n';
  }
  return false;
}

// The session's serving state: a bare in-memory service, swapped for a
// durable registry's service when one is open.
struct Session {
  ServiceOptions options;
  storage::WalSyncOptions sync;
  std::unique_ptr<EvaluationService> bare;
  std::unique_ptr<storage::DurableRegistry> registry;

  explicit Session(ServiceOptions opts, storage::WalSyncOptions sync_opts)
      : options(opts),
        sync(sync_opts),
        bare(std::make_unique<EvaluationService>(opts)) {}

  EvaluationService& service() {
    return registry != nullptr ? registry->service() : *bare;
  }
};

void HandleLoad(Session& session, const std::string& name,
                const std::string& text) {
  Result<DbInfo> info =
      session.registry != nullptr ? session.registry->Load(name, text)
                                  : session.service().Load(name, text);
  if (!info.ok()) {
    Err(info.status().ToString());
  } else {
    std::printf("OK db=%s atoms=%d\n", info.value().name.c_str(),
                info.value().atoms);
  }
}

void HandleAppend(Session& session, const std::string& name,
                  const std::string& text) {
  if (session.registry != nullptr) {
    Result<DbInfo> info = session.registry->AppendText(name, text);
    if (!info.ok()) {
      Err(info.status().ToString());
      return;
    }
    std::printf("OK db=%s atoms=%d revision=%llu\n",
                info.value().name.c_str(), info.value().atoms,
                static_cast<unsigned long long>(info.value().revision));
    return;
  }
  EvaluationService& service = session.service();
  Database* db = service.mutable_database(name);
  if (db == nullptr) {
    Err("INVALID_ARGUMENT: unknown database '" + name + "'");
    return;
  }
  Result<std::vector<storage::WalRecord>> records =
      storage::ParseMutationText(text, service.vocab());
  if (!records.ok()) {
    Err(records.status().ToString());
    return;
  }
  Status status = storage::ApplyWalRecords(records.value(), db);
  if (!status.ok()) {
    Err(status.ToString());
    return;
  }
  std::printf("OK db=%s atoms=%d revision=%llu\n", name.c_str(),
              db->SizeAtoms(),
              static_cast<unsigned long long>(db->revision()));
}

void HandleOpen(Session& session, const std::string& dir) {
  Result<std::unique_ptr<storage::DurableRegistry>> registry =
      storage::DurableRegistry::Open(dir, session.options, session.sync);
  if (!registry.ok()) {
    Err(registry.status().ToString());
    return;
  }
  session.registry = std::move(registry.value());
  std::printf("OK dir=%s databases=%zu\n", dir.c_str(),
              session.registry->service().database_names().size());
}

void HandleSave(Session& session, const std::string& name) {
  if (session.registry == nullptr) {
    Err("SAVE needs an open registry (use OPEN <dir> or --data-dir)");
    return;
  }
  Result<DbInfo> info = session.registry->Compact(name);
  if (!info.ok()) {
    Err(info.status().ToString());
    return;
  }
  std::printf("OK db=%s atoms=%d\n", info.value().name.c_str(),
              info.value().atoms);
}

void HandleInfo(Session& session, const std::string& name) {
  EvaluationService& service = session.service();
  if (name.empty()) {
    std::printf("OK databases=%zu vocab-uid=%llu\n",
                service.database_names().size(),
                static_cast<unsigned long long>(service.vocab()->uid()));
    return;
  }
  const Database* db = service.database(name);
  if (db == nullptr) {
    Err("INVALID_ARGUMENT: unknown database '" + name + "'");
    return;
  }
  std::printf("OK db=%s atoms=%d uid=%llu revision=%llu\n", name.c_str(),
              db->SizeAtoms(), static_cast<unsigned long long>(db->uid()),
              static_cast<unsigned long long>(db->revision()));
}

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions options;
  storage::WalSyncOptions sync;
  std::string data_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      options.num_workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--plan-cache=", 0) == 0) {
      int capacity = std::atoi(arg.c_str() + 13);
      if (capacity <= 0) {
        std::fprintf(stderr, "iodb_serve: --plan-cache needs a positive "
                             "capacity\n");
        return 2;
      }
      options.plan_cache_capacity = static_cast<size_t>(capacity);
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      data_dir = arg.substr(11);
      if (data_dir.empty()) {
        std::fprintf(stderr, "iodb_serve: --data-dir needs a path\n");
        return 2;
      }
    } else if (arg.rfind("--wal-sync=", 0) == 0) {
      std::optional<storage::WalSyncPolicy> policy =
          storage::ParseWalSyncPolicy(arg.substr(11));
      if (!policy.has_value()) {
        std::fprintf(stderr, "iodb_serve: --wal-sync needs "
                             "none|commit|interval\n");
        return 2;
      }
      sync.policy = *policy;
    } else if (arg.rfind("--default-deadline-ms=", 0) == 0) {
      options.default_deadline_ms = std::atoll(arg.c_str() + 22);
    } else if (arg.rfind("--default-step-budget=", 0) == 0) {
      options.default_step_budget = std::atoll(arg.c_str() + 22);
    } else {
      std::fprintf(stderr,
                   "usage: iodb_serve [--workers=N] [--plan-cache=N] "
                   "[--data-dir=DIR] [--wal-sync=none|commit|interval] "
                   "[--default-deadline-ms=N] [--default-step-budget=N]\n");
      return 2;
    }
  }

  InstallShutdownHandlers();

  Session session(options, sync);
  if (!data_dir.empty()) {
    Result<std::unique_ptr<storage::DurableRegistry>> registry =
        storage::DurableRegistry::Open(data_dir, options, sync);
    if (!registry.ok()) {
      std::fprintf(stderr, "iodb_serve: --data-dir: %s\n",
                   registry.status().ToString().c_str());
      return 2;
    }
    session.registry = std::move(registry.value());
  }

  std::string line;
  while (!g_shutdown && std::getline(std::cin, line)) {
    if (line.size() > kMaxLineBytes) {
      Err("line-too-long (" + std::to_string(line.size()) + " bytes; limit " +
          std::to_string(kMaxLineBytes) + ")");
      std::fflush(stdout);
      continue;
    }
    std::string_view rest = StripWhitespace(line);
    if (rest.empty() || rest[0] == '#') continue;
    size_t space = rest.find(' ');
    std::string command(rest.substr(0, space));
    std::string args = space == std::string_view::npos
                           ? std::string()
                           : std::string(StripWhitespace(rest.substr(space)));

    if (command == "QUIT") {
      break;
    } else if (command == "LOAD" || command == "APPEND") {
      if (args.empty()) {
        Err(command + " needs a database name");
        continue;
      }
      std::string text;
      if (!ReadUntilEnd(std::cin, &text)) {
        Err("unterminated " + command + " (missing END)");
        break;
      }
      if (command == "LOAD") {
        HandleLoad(session, args, text);
      } else {
        HandleAppend(session, args, text);
      }
    } else if (command == "OPEN") {
      if (args.empty()) {
        Err("OPEN needs a directory");
        continue;
      }
      HandleOpen(session, args);
    } else if (command == "SAVE") {
      if (args.empty()) {
        Err("SAVE needs a database name");
        continue;
      }
      HandleSave(session, args);
    } else if (command == "INFO") {
      HandleInfo(session, args);
    } else if (command == "EVAL") {
      Result<EvalRequest> request = ParseEvalRequest(args);
      if (!request.ok()) {
        Err(request.status().ToString());
        continue;
      }
      PrintResponse(session.service().Eval(request.value()));
    } else if (command == "BATCH") {
      // Bounded so a single protocol line cannot force a huge
      // pre-allocation; large workloads stream multiple batches.
      constexpr int kMaxBatch = 65536;
      int n = std::atoi(args.c_str());
      if (n <= 0 || n > kMaxBatch) {
        Err("BATCH needs a request count in [1, " +
            std::to_string(kMaxBatch) + "]");
        continue;
      }
      // Consume all n request lines BEFORE parsing: a parse failure must
      // not leave unread batch payload to be re-interpreted as protocol
      // commands.
      std::vector<std::string> request_lines(static_cast<size_t>(n));
      bool eof = false;
      for (int i = 0; i < n && !eof; ++i) {
        eof = !std::getline(std::cin, request_lines[static_cast<size_t>(i)]);
      }
      if (eof) {
        Err("unexpected EOF inside BATCH");
        return 0;
      }
      std::vector<EvalRequest> requests;
      bool parse_failed = false;
      for (int i = 0; i < n; ++i) {
        Result<EvalRequest> request =
            ParseEvalRequest(request_lines[static_cast<size_t>(i)]);
        if (!request.ok()) {
          // Abort the whole batch: slots after a dropped line would shift.
          if (!parse_failed) {
            Err("request " + std::to_string(i) + ": " +
                request.status().ToString());
          }
          parse_failed = true;
        } else {
          requests.push_back(std::move(request.value()));
        }
      }
      if (parse_failed) continue;
      for (const Result<EvalResponse>& response :
           session.service().EvalBatch(requests)) {
        PrintResponse(response);
      }
    } else if (command == "STATS") {
      std::printf("%sOK\n", session.service().stats().ToString().c_str());
    } else {
      // Structured so scripted clients can distinguish a typo'd verb
      // from a failed command; the session stays alive.
      Err("unknown-verb '" + command + "'");
    }
    std::fflush(stdout);
  }

  // Clean shutdown (QUIT, EOF, SIGTERM, SIGINT): make every acknowledged
  // append durable before exiting.
  if (session.registry != nullptr) {
    Status status = session.registry->Flush();
    if (!status.ok()) {
      std::fprintf(stderr, "iodb_serve: shutdown flush: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  std::fflush(stdout);
  return 0;
}
