// iodb_serve: line-oriented request server over the in-process
// EvaluationService. Two front ends share one protocol implementation
// (src/server/protocol.h):
//
//   * stdin/stdout (default): one session per process, inetd-style —
//     the compatibility path, and the only mode where OPEN is allowed;
//   * socket server (--listen=PATH and/or --tcp-port=N): a concurrent
//     multi-client front end (src/server/server.h) where N sessions
//     serve at once. EVAL/BATCH pin a published database version at
//     request start and run lock-free against it; LOAD/APPEND/SAVE go
//     through the single-writer publish path (WAL-log, build the next
//     version, atomically republish) and readers on the old version
//     drain naturally. See docs/SERVING.md.
//
// Protocol (one command per line; blank lines and '#' comments ignored):
//
//   LOAD <name>          start loading a database; the following lines
//                        are parser-format database text, terminated by
//                        a line containing only "END"
//                        -> "OK db=<name> atoms=<n>"
//                        With a durable registry open (--data-dir or
//                        OPEN), the database is persisted: a restarted
//                        server restores it under the same name with
//                        the same (uid, revision) identity.
//   APPEND <name>        append parser-format statements (same END
//                        terminator) to a registered database; with a
//                        registry open the mutation is logged to the
//                        database's write-ahead log first
//                        -> "OK db=<name> atoms=<n> revision=<r>"
//   OPEN <dir>           open (creating if needed) a durable registry;
//                        replaces the session's service with one
//                        restored from <dir> (stdin mode only — a
//                        socket session may not swap the registry under
//                        its peers)
//                        -> "OK dir=<dir> databases=<n>"
//   SAVE <name>          fold the write-ahead log of <name> into a
//                        fresh snapshot (registry required)
//                        -> "OK db=<name> atoms=<n>"
//   INFO [<name>]        -> "OK db=<name> atoms=<n> uid=<u> revision=<r>"
//                        or, with no name, the service identity:
//                        "OK databases=<n> vocab-uid=<u>"
//   EVAL <request>       <request> is the wire form of service/request.h:
//                        <db> [--semantics=...] [--engine=...]
//                        [--countermodel] [--explain] [--identity] <query>
//                        -> verdict line "ENTAILED  [engine: ..., cache:
//                        hit|miss]", then optional "countermodel: ..."
//                        and explain lines; --identity adds the pinned
//                        snapshot's "db: <uid>@<revision>" to the
//                        verdict line
//   BATCH <n>            the next n lines are EVAL request lines, served
//                        as one batch through the worker pool
//                        -> n verdict lines, in request order
//   STATS                -> the service counters, one "name value" per
//                        line, terminated by "OK"
//   QUIT                 -> exit 0 (EOF does the same)
//
// Every failure is reported as a single "ERR <message>" line and the
// session continues; an unrecognized verb is the structured
// "ERR unknown-verb '<verb>'", a command line over the 1 MiB limit is
// "ERR line-too-long ...", and a request that exhausted its deadline /
// step budget / cancellation is "ERR deadline-exceeded <detail>" or
// "ERR cancelled <detail>". Flags: --workers=N (worker pool size,
// default: machine), --costing=on|off (statistics-backed cost-based
// planning default for requests that do not pass their own --costing
// flag; default on), --plan-cache=N (plan cache capacity, default 128),
// --data-dir=DIR (open a durable registry at startup),
// --wal-sync=none|commit|interval (WAL flush policy, default commit),
// --default-deadline-ms=N / --default-step-budget=N (governance applied
// to requests that set none of their own), --listen=PATH (serve on a
// unix-domain socket), --tcp-port=N (serve on 127.0.0.1:N; 0 picks an
// ephemeral port, announced on stdout), --max-sessions=N (socket
// concurrency cap, default 256).
//
// Shutdown: SIGTERM / SIGINT (and, in stdin mode, QUIT / EOF) end the
// process cleanly — the registry's un-synced WAL appends are flushed
// and the process exits 0. Signals are delivered through a self-pipe:
// the handler writes one byte to a pipe that every blocking wait polls
// alongside its data fd, so a signal that lands between "check the
// flag" and "enter the blocking read" (the old lost-wakeup window)
// still interrupts the wait immediately. In socket mode, shutdown is a
// drain: in-flight evaluations are cancelled, every session is joined,
// and acknowledged appends are durable before exit.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <poll.h>
#include <string>
#include <unistd.h>

#include "server/line_channel.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/wal.h"

namespace {

using namespace iodb;

// Self-pipe for shutdown signals. The handler writes one byte and never
// drains it, so the pipe stays readable (level-triggered): a wait
// entered AFTER the signal still returns immediately — there is no
// window between checking a flag and blocking where a signal is lost.
int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int) {
  char byte = 's';
  // write(2) is async-signal-safe; a full pipe just means a byte is
  // already there, which is all we need.
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

bool InstallShutdownHandlers() {
  if (::pipe(g_signal_pipe) != 0) return false;
  struct sigaction action = {};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  // SA_RESTART deliberately NOT set, but correctness does not depend on
  // it: the self-pipe byte makes the poll() in LineChannel::ReadLine
  // return even if the signal itself was swallowed by a restart.
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  // A client that disconnects mid-response must surface as a write
  // error on that session, not kill the server.
  ::signal(SIGPIPE, SIG_IGN);
  return true;
}

// Socket mode: park until a shutdown signal arrives.
void WaitForShutdownSignal() {
  struct pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
  for (;;) {
    int ready = ::poll(&pfd, 1, -1);
    if (ready > 0) return;
    if (ready < 0 && errno != EINTR) return;
  }
}

int FlushAndExit(server::ServingState& state) {
  Status status = state.FlushRegistry();
  if (!status.ok()) {
    std::fprintf(stderr, "iodb_serve: shutdown flush: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions options;
  storage::WalSyncOptions sync;
  std::string data_dir;
  server::ServerOptions server_options;
  bool socket_mode = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      options.num_workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--plan-cache=", 0) == 0) {
      int capacity = std::atoi(arg.c_str() + 13);
      if (capacity <= 0) {
        std::fprintf(stderr, "iodb_serve: --plan-cache needs a positive "
                             "capacity\n");
        return 2;
      }
      options.plan_cache_capacity = static_cast<size_t>(capacity);
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      data_dir = arg.substr(11);
      if (data_dir.empty()) {
        std::fprintf(stderr, "iodb_serve: --data-dir needs a path\n");
        return 2;
      }
    } else if (arg.rfind("--wal-sync=", 0) == 0) {
      std::optional<storage::WalSyncPolicy> policy =
          storage::ParseWalSyncPolicy(arg.substr(11));
      if (!policy.has_value()) {
        std::fprintf(stderr, "iodb_serve: --wal-sync needs "
                             "none|commit|interval\n");
        return 2;
      }
      sync.policy = *policy;
    } else if (arg.rfind("--costing=", 0) == 0) {
      const std::string value = arg.substr(10);
      if (value == "on") {
        options.use_cost_model = true;
      } else if (value == "off") {
        options.use_cost_model = false;
      } else {
        std::fprintf(stderr,
                     "iodb_serve: --costing needs on or off\n");
        return 2;
      }
    } else if (arg.rfind("--default-deadline-ms=", 0) == 0) {
      options.default_deadline_ms = std::atoll(arg.c_str() + 22);
    } else if (arg.rfind("--default-step-budget=", 0) == 0) {
      options.default_step_budget = std::atoll(arg.c_str() + 22);
    } else if (arg.rfind("--listen=", 0) == 0) {
      server_options.unix_path = arg.substr(9);
      if (server_options.unix_path.empty()) {
        std::fprintf(stderr, "iodb_serve: --listen needs a socket path\n");
        return 2;
      }
      socket_mode = true;
    } else if (arg.rfind("--tcp-port=", 0) == 0) {
      server_options.tcp_port = std::atoi(arg.c_str() + 11);
      socket_mode = true;
    } else if (arg.rfind("--max-sessions=", 0) == 0) {
      server_options.max_sessions = std::atoi(arg.c_str() + 15);
      if (server_options.max_sessions <= 0) {
        std::fprintf(stderr, "iodb_serve: --max-sessions needs a positive "
                             "count\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: iodb_serve [--workers=N] [--plan-cache=N] "
                   "[--costing=on|off] "
                   "[--data-dir=DIR] [--wal-sync=none|commit|interval] "
                   "[--default-deadline-ms=N] [--default-step-budget=N] "
                   "[--listen=SOCKET_PATH] [--tcp-port=N] "
                   "[--max-sessions=N]\n");
      return 2;
    }
  }

  if (!InstallShutdownHandlers()) {
    std::fprintf(stderr, "iodb_serve: cannot create signal pipe\n");
    return 2;
  }

  server::ServingState state(options, sync);
  if (!data_dir.empty()) {
    Status status = state.OpenRegistry(data_dir);
    if (!status.ok()) {
      std::fprintf(stderr, "iodb_serve: --data-dir: %s\n",
                   status.ToString().c_str());
      return 2;
    }
  }

  if (socket_mode) {
    Result<std::unique_ptr<server::SocketServer>> server =
        server::SocketServer::Start(&state, server_options);
    if (!server.ok()) {
      std::fprintf(stderr, "iodb_serve: %s\n",
                   server.status().ToString().c_str());
      return 2;
    }
    // Announce the endpoints (the ephemeral TCP port in particular) so
    // harnesses can connect without racing the bind.
    if (!server.value()->unix_path().empty()) {
      std::printf("listening unix=%s\n", server.value()->unix_path().c_str());
    }
    if (server.value()->tcp_port() >= 0) {
      std::printf("listening tcp=127.0.0.1:%d\n", server.value()->tcp_port());
    }
    std::fflush(stdout);
    WaitForShutdownSignal();
    server.value()->Stop();  // drain: cancel, wake, join every session
    return FlushAndExit(state);
  }

  // stdin mode: one session over stdin/stdout, interruptible by the
  // signal pipe at any blocking point (idle, mid-payload, mid-batch).
  server::LineChannel channel(STDIN_FILENO, STDOUT_FILENO, g_signal_pipe[0]);
  server::ProtocolSession::Options session_options;
  session_options.allow_open = true;
  server::ProtocolSession session(&state, &channel, session_options);
  server::ProtocolSession::ExitReason reason = session.Run();
  if (reason == server::ProtocolSession::ExitReason::kChannelError) {
    std::fprintf(stderr, "iodb_serve: stdout write failed\n");
    return 1;
  }
  return FlushAndExit(state);
}
