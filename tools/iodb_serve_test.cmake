# CLI test for iodb_serve and iodb_replay, run via ctest as
#   cmake -DIODB_SERVE=<binary> -DIODB_REPLAY=<binary> -DWORK_DIR=<dir>
#         -P iodb_serve_test.cmake
#
# Drives a scripted LOAD/EVAL/BATCH/STATS session through iodb_serve and
# compares the full stdout against a golden transcript (the protocol is
# deterministic by design: verdicts, engine names, cache hit/miss states
# and counters are all scheduling-independent). Then replays an
# equivalent JSON trace through iodb_replay and checks the report's
# deterministic lines (request/verdict/cache counts; timings are not
# matched).

if(NOT DEFINED IODB_SERVE OR NOT DEFINED IODB_REPLAY OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "pass -DIODB_SERVE=<binary> -DIODB_REPLAY=<binary> -DWORK_DIR=<dir>")
endif()

# --- iodb_serve: golden session --------------------------------------------

set(session "${WORK_DIR}/iodb_serve_cli.session")
file(WRITE "${session}" "# scripted session (comments are ignored)
LOAD base
P(u)
Q(v)
u < v
END
EVAL base exists t1 t2: P(t1) & t1 < t2 & Q(t2)
EVAL base exists t1 t2: P(t1) & t1 < t2 & Q(t2)
EVAL base exists t1 t2: Q(t1) & t1 < t2 & P(t2)
BATCH 3
base exists t1 t2: P(t1) & t1 < t2 & Q(t2)
base exists t: P(t)
nosuchdb exists t: P(t)
EVAL base --engine=brute-force exists t: P(t)
FROBNICATE everything
STATS
QUIT
")

# The second EVAL of an identical request line is the plan-cache hit; the
# BATCH reuses one cached plan (hit) and compiles one new one (miss); the
# unknown database fails only its own slot; forcing a different engine is
# a different plan key, so it misses. An unrecognized verb answers the
# structured unknown-verb error and the session continues (the STATS
# after it still runs).
set(expected "OK db=base atoms=3
ENTAILED  [engine: bounded-width, cache: miss]
ENTAILED  [engine: bounded-width, cache: hit]
NOT ENTAILED  [engine: bounded-width, cache: miss]
ENTAILED  [engine: bounded-width, cache: hit]
ENTAILED  [engine: bounded-width, cache: miss]
ERR INVALID_ARGUMENT: unknown database 'nosuchdb'
ENTAILED  [engine: brute-force, cache: miss]
ERR unknown-verb 'FROBNICATE'
requests              7
batches               1
plans-compiled        4
databases             1
publishes             1
plan-cache-hits       2
plan-cache-misses     4
plan-cache-evictions  0
plan-cache-entries    4
plan-cache-capacity   128
OK
")

execute_process(COMMAND ${IODB_SERVE}
  INPUT_FILE "${session}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "iodb_serve: exit ${rc}\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT "${out}" STREQUAL "${expected}")
  message(FATAL_ERROR "iodb_serve transcript mismatch\n"
    "--- got ---\n${out}\n--- want ---\n${expected}")
endif()

# A malformed request line aborts its batch but must still consume every
# batch payload line — otherwise the remainder would be re-interpreted as
# protocol commands. The "LOAD evil" line here is batch payload; if the
# server ran it as a command it would answer "OK db=evil ...".
set(desync_session "${WORK_DIR}/iodb_serve_cli.desync")
file(WRITE "${desync_session}" "LOAD base
P(u)
END
BATCH 2
base
LOAD evil
STATS
QUIT
")
execute_process(COMMAND ${IODB_SERVE}
  INPUT_FILE "${desync_session}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "iodb_serve desync session: exit ${rc}\n${out}\n${err}")
endif()
if("${out}" MATCHES "db=evil")
  message(FATAL_ERROR "batch payload executed as a command:\n${out}")
endif()
if(NOT "${out}" MATCHES "ERR request 0: INVALID_ARGUMENT"
   OR NOT "${out}" MATCHES "databases +1\n")
  message(FATAL_ERROR "iodb_serve desync transcript unexpected:\n${out}")
endif()

# Flag errors exit 2 before serving anything.
execute_process(COMMAND ${IODB_SERVE} --bogus
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT "${err}" MATCHES "usage:")
  message(FATAL_ERROR "iodb_serve --bogus: exit ${rc}, want 2 + usage\n${err}")
endif()

# --- durable registry: kill-and-restart golden test -------------------------
# Session 1 loads and mutates a database in a durable registry; session 2
# is a fresh process on the same directory. The restart must restore the
# database under its name with the SAME (uid, revision) identity and the
# same vocabulary uid (the plan-cache key component), and the appended
# facts must be visible — the WAL replayed.

set(store "${WORK_DIR}/iodb_serve_cli.store")
file(REMOVE_RECURSE "${store}")

set(restart1 "${WORK_DIR}/iodb_serve_cli.restart1")
file(WRITE "${restart1}" "LOAD base
P(u)
Q(v)
u < v
END
APPEND base
R(w)
v < w
END
EVAL base exists t1 t2: Q(t1) & t1 < t2 & R(t2)
INFO base
INFO
QUIT
")
execute_process(COMMAND ${IODB_SERVE} --data-dir=${store}
  INPUT_FILE "${restart1}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out1 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "restart session 1: exit ${rc}\n${out1}\n${err}")
endif()
string(REGEX MATCH "OK db=base atoms=[0-9]+ uid=[0-9]+ revision=[0-9]+"
  identity1 "${out1}")
string(REGEX MATCH "OK databases=1 vocab-uid=[0-9]+" vocab1 "${out1}")
if(identity1 STREQUAL "" OR vocab1 STREQUAL ""
   OR NOT "${out1}" MATCHES "OK db=base atoms=5 revision="
   OR NOT "${out1}" MATCHES "ENTAILED")
  message(FATAL_ERROR "restart session 1 transcript unexpected:\n${out1}")
endif()

set(restart2 "${WORK_DIR}/iodb_serve_cli.restart2")
file(WRITE "${restart2}" "INFO base
INFO
EVAL base exists t1 t2: Q(t1) & t1 < t2 & R(t2)
SAVE base
QUIT
")
execute_process(COMMAND ${IODB_SERVE} --data-dir=${store}
  INPUT_FILE "${restart2}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out2 ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "restart session 2: exit ${rc}\n${out2}\n${err}")
endif()
# The identities must be byte-identical across the restart.
if(NOT "${out2}" MATCHES "${identity1}")
  message(FATAL_ERROR
    "restart lost the database identity: want '${identity1}'\n${out2}")
endif()
if(NOT "${out2}" MATCHES "${vocab1}")
  message(FATAL_ERROR
    "restart lost the vocabulary identity: want '${vocab1}'\n${out2}")
endif()
if(NOT "${out2}" MATCHES "ENTAILED" OR NOT "${out2}" MATCHES "OK db=base")
  message(FATAL_ERROR "restart session 2 transcript unexpected:\n${out2}")
endif()

# The OPEN verb opens the same registry mid-session.
set(restart3 "${WORK_DIR}/iodb_serve_cli.restart3")
file(WRITE "${restart3}" "OPEN ${store}
INFO base
QUIT
")
execute_process(COMMAND ${IODB_SERVE}
  INPUT_FILE "${restart3}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out3 ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT "${out3}" MATCHES "OK dir=.* databases=1"
   OR NOT "${out3}" MATCHES "${identity1}")
  message(FATAL_ERROR "OPEN verb session unexpected (exit ${rc}):\n${out3}")
endif()

# --- governance: exhaustion is a structured error --------------------------
# A zero step budget / already-expired deadline must answer a structured
# "ERR deadline-exceeded ..." line (with partial counters in the message)
# and keep serving — the QUIT after them still exits cleanly.

set(gov_session "${WORK_DIR}/iodb_serve_cli.governance")
file(WRITE "${gov_session}" "LOAD base
P(u)
Q(v)
u < v
END
EVAL base --step-budget=0 exists t1 t2: P(t1) & t1 < t2 & Q(t2)
EVAL base --deadline-ms=0 exists t1 t2: P(t1) & t1 < t2 & Q(t2)
EVAL base --step-budget=1000000 exists t1 t2: P(t1) & t1 < t2 & Q(t2)
QUIT
")
execute_process(COMMAND ${IODB_SERVE}
  INPUT_FILE "${gov_session}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "governance session: exit ${rc}\n${out}\n${err}")
endif()
if(NOT "${out}" MATCHES "ERR deadline-exceeded step budget exhausted"
   OR NOT "${out}" MATCHES "ERR deadline-exceeded deadline exceeded"
   OR NOT "${out}" MATCHES "ENTAILED")
  message(FATAL_ERROR "governance transcript unexpected:\n${out}")
endif()

# --- oversized request line: structured error, session continues ------------

string(REPEAT "x" 1048577 long_line)  # kMaxLineBytes + 1
set(long_session "${WORK_DIR}/iodb_serve_cli.longline")
file(WRITE "${long_session}" "${long_line}
STATS
QUIT
")
execute_process(COMMAND ${IODB_SERVE}
  INPUT_FILE "${long_session}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "long-line session: exit ${rc}\n${err}")
endif()
if(NOT "${out}" MATCHES "ERR line-too-long"
   OR NOT "${out}" MATCHES "requests +0")
  message(FATAL_ERROR "long-line transcript unexpected:\n${out}")
endif()

# --- SIGTERM: clean shutdown ------------------------------------------------
# The server must leave its blocking read, flush the registry, and exit 0
# when it receives SIGTERM mid-session. Driven through a fifo so stdin
# stays open (no EOF) while the signal arrives.
#
# The kill happens while the server is PROVABLY idle-blocked: the script
# waits until the last command has been acknowledged AND /proc shows the
# process sleeping in a read/poll wait. This is exactly the lost-wakeup
# window of the old serve loop (signal lands after the shutdown-flag
# check, before the blocking read) — the self-pipe wake must interrupt
# the wait that is ALREADY in progress. A watchdog turns a hang into a
# clean test failure instead of a stuck CI job.

find_program(BASH_PROGRAM bash)
if(BASH_PROGRAM)
  set(sigterm_script "${WORK_DIR}/iodb_serve_cli.sigterm.sh")
  file(WRITE "${sigterm_script}" "set -u
dir=\"$1\"; serve=\"$2\"
fifo=\"$dir/serve.fifo\"; out=\"$dir/serve.out\"
rm -f \"$fifo\" \"$out\"; rm -rf \"$dir/sigterm.store\"
mkfifo \"$fifo\" || exit 90
\"$serve\" --data-dir=\"$dir/sigterm.store\" --wal-sync=none \\
  < \"$fifo\" > \"$out\" &
pid=$!
exec 3>\"$fifo\"
printf 'LOAD base\\nP(u)\\nP(v)\\nu < v\\nEND\\nAPPEND base\\nQ(w)\\nv < w\\nEND\\n' >&3
ok=0
for i in $(seq 1 100); do
  grep -q 'OK db=base atoms=5' \"$out\" 2>/dev/null && ok=1 && break
  sleep 0.1
done
if [ \"$ok\" != 1 ]; then kill -9 $pid; exit 91; fi
# Provably idle-blocked: every command is acknowledged and the process
# is in an interruptible sleep (state S = blocked in its next read).
blocked=0
for i in $(seq 1 100); do
  state=$(awk '{print $3}' /proc/$pid/stat 2>/dev/null)
  [ \"$state\" = S ] && blocked=1 && break
  sleep 0.05
done
if [ \"$blocked\" != 1 ]; then kill -9 $pid; exit 92; fi
kill -TERM $pid
# Watchdog: the old serve loop could lose this wakeup and block until
# the next input line (forever, here) — bound the wait.
# Detached from stdout/stderr so an outliving sleep cannot hold the
# harness's output pipes open.
( sleep 20; kill -9 $pid ) >/dev/null 2>&1 &
watchdog=$!
wait $pid
rc=$?
kill $watchdog 2>/dev/null
exec 3>&-
if [ $rc -ge 128 ]; then exit 93; fi  # watchdog fired: shutdown hung
exit $rc
")
  execute_process(COMMAND ${BASH_PROGRAM} "${sigterm_script}"
    "${WORK_DIR}" "${IODB_SERVE}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "SIGTERM shutdown: exit ${rc} (want 0; 92 = never "
      "reached the blocked state, 93 = shutdown hung past the watchdog)"
      "\n${out}\n${err}")
  endif()
  # The appended group must have survived the shutdown flush: a fresh
  # session on the same directory sees all three atoms.
  set(after_sigterm "${WORK_DIR}/iodb_serve_cli.aftersigterm")
  file(WRITE "${after_sigterm}" "INFO base
QUIT
")
  execute_process(COMMAND ${IODB_SERVE} --data-dir=${WORK_DIR}/sigterm.store
    INPUT_FILE "${after_sigterm}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0 OR NOT "${out}" MATCHES "OK db=base atoms=5")
    message(FATAL_ERROR "post-SIGTERM state unexpected (exit ${rc}):\n${out}")
  endif()

  # The signal must interrupt ANY blocking wait, not just the top-level
  # command read: kill while the server is blocked mid-APPEND, waiting
  # for payload lines that never come. The half-read append must not be
  # applied (nothing was acknowledged).
  set(midpayload_script "${WORK_DIR}/iodb_serve_cli.midpayload.sh")
  file(WRITE "${midpayload_script}" "set -u
dir=\"$1\"; serve=\"$2\"
fifo=\"$dir/mid.fifo\"; out=\"$dir/mid.out\"
rm -f \"$fifo\" \"$out\"; rm -rf \"$dir/mid.store\"
mkfifo \"$fifo\" || exit 90
\"$serve\" --data-dir=\"$dir/mid.store\" --wal-sync=none \\
  < \"$fifo\" > \"$out\" &
pid=$!
exec 3>\"$fifo\"
printf 'LOAD base\\nP(u)\\nEND\\nAPPEND base\\nQ(v)\\n' >&3  # no END
ok=0
for i in $(seq 1 100); do
  grep -q 'OK db=base atoms=1' \"$out\" 2>/dev/null && ok=1 && break
  sleep 0.1
done
if [ \"$ok\" != 1 ]; then kill -9 $pid; exit 91; fi
blocked=0
for i in $(seq 1 100); do
  state=$(awk '{print $3}' /proc/$pid/stat 2>/dev/null)
  [ \"$state\" = S ] && blocked=1 && break
  sleep 0.05
done
if [ \"$blocked\" != 1 ]; then kill -9 $pid; exit 92; fi
kill -TERM $pid
# Detached from stdout/stderr so an outliving sleep cannot hold the
# harness's output pipes open.
( sleep 20; kill -9 $pid ) >/dev/null 2>&1 &
watchdog=$!
wait $pid
rc=$?
kill $watchdog 2>/dev/null
exec 3>&-
if [ $rc -ge 128 ]; then exit 93; fi
exit $rc
")
  execute_process(COMMAND ${BASH_PROGRAM} "${midpayload_script}"
    "${WORK_DIR}" "${IODB_SERVE}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "mid-payload SIGTERM: exit ${rc} (want 0)\n${out}\n${err}")
  endif()
  set(after_mid "${WORK_DIR}/iodb_serve_cli.aftermid")
  file(WRITE "${after_mid}" "INFO base
QUIT
")
  execute_process(COMMAND ${IODB_SERVE} --data-dir=${WORK_DIR}/mid.store
    INPUT_FILE "${after_mid}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0 OR NOT "${out}" MATCHES "OK db=base atoms=1")
    message(FATAL_ERROR
      "post-mid-payload state unexpected (exit ${rc}):\n${out}")
  endif()
endif()

# --- iodb_replay: deterministic report lines -------------------------------

set(trace "${WORK_DIR}/iodb_serve_cli.trace.json")
file(WRITE "${trace}" "[
  {\"op\": \"load\", \"db\": \"base\", \"text\": \"P(u)\\nQ(v)\\nu < v\"},
  {\"op\": \"eval\", \"db\": \"base\",
   \"query\": \"exists t1 t2: P(t1) & t1 < t2 & Q(t2)\"},
  {\"op\": \"eval\", \"db\": \"base\",
   \"query\": \"exists t1 t2: Q(t1) & t1 < t2 & P(t2)\"},
  {\"op\": \"eval\", \"db\": \"base\", \"query\": \"exists t: P(t)\",
   \"engine\": \"brute-force\"}
]
")

execute_process(COMMAND ${IODB_REPLAY} "${trace}" --repeat=3
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "iodb_replay: exit ${rc}\nstdout: ${out}\nstderr: ${err}")
endif()
foreach(pattern
    "replayed 9 request\\(s\\)"
    "verdicts: 6 entailed, 3 not entailed, 0 error\\(s\\)"
    "outcomes: 9 ok, 0 deadline-exceeded, 0 cancelled, 0 error\\(s\\)"
    "latency us: p50="
    "plan cache: 6 hit\\(s\\), 3 miss\\(es\\), 0 eviction\\(s\\), 3 compiled")
  if(NOT "${out}" MATCHES "${pattern}")
    message(FATAL_ERROR "iodb_replay output does not match '${pattern}'\n${out}")
  endif()
endforeach()

# A governed trace: the zero-step-budget request is counted per status
# code ("deadline-exceeded", excluded from latency percentiles) while the
# ungoverned request completes.
set(gov_trace "${WORK_DIR}/iodb_serve_cli.gov.json")
file(WRITE "${gov_trace}" "[
  {\"op\": \"load\", \"db\": \"base\", \"text\": \"P(u)\\nQ(v)\\nu < v\"},
  {\"op\": \"eval\", \"db\": \"base\",
   \"query\": \"exists t1 t2: P(t1) & t1 < t2 & Q(t2)\"},
  {\"op\": \"eval\", \"db\": \"base\", \"step_budget\": 0,
   \"query\": \"exists t1 t2: P(t1) & t1 < t2 & Q(t2)\"}
]
")
execute_process(COMMAND ${IODB_REPLAY} "${gov_trace}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "iodb_replay governed trace: exit ${rc}\n${out}\n${err}")
endif()
if(NOT "${out}" MATCHES "outcomes: 1 ok, 1 deadline-exceeded, 0 cancelled, 0 error\\(s\\)")
  message(FATAL_ERROR "iodb_replay governed outcomes mismatch\n${out}")
endif()

# Regression: when EVERY request is excluded from the latency population
# (here: all exhausted), the percentiles must print "n/a", not a
# fabricated 0.0 measurement.
set(empty_lat_trace "${WORK_DIR}/iodb_serve_cli.emptylat.json")
file(WRITE "${empty_lat_trace}" "[
  {\"op\": \"load\", \"db\": \"base\", \"text\": \"P(u)\\nQ(v)\\nu < v\"},
  {\"op\": \"eval\", \"db\": \"base\", \"step_budget\": 0,
   \"query\": \"exists t1 t2: P(t1) & t1 < t2 & Q(t2)\"},
  {\"op\": \"eval\", \"db\": \"base\", \"step_budget\": 0,
   \"query\": \"exists t1 t2: Q(t1) & t1 < t2 & P(t2)\"}
]
")
execute_process(COMMAND ${IODB_REPLAY} "${empty_lat_trace}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "iodb_replay empty-latency trace: exit ${rc}\n${err}")
endif()
if(NOT "${out}" MATCHES "outcomes: 0 ok, 2 deadline-exceeded, 0 cancelled, 0 error\\(s\\)"
   OR NOT "${out}" MATCHES "latency us: p50=n/a p90=n/a p99=n/a max=n/a")
  message(FATAL_ERROR "iodb_replay empty-latency report mismatch\n${out}")
endif()

# The batched path serves the same verdicts through the worker pool.
execute_process(COMMAND ${IODB_REPLAY} "${trace}" --batch=3 --workers=2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "iodb_replay --batch: exit ${rc}\n${out}\n${err}")
endif()
if(NOT "${out}" MATCHES "verdicts: 2 entailed, 1 not entailed, 0 error\\(s\\)")
  message(FATAL_ERROR "iodb_replay --batch verdict mismatch\n${out}")
endif()

# A malformed trace is a usage error, not a crash.
set(bad_trace "${WORK_DIR}/iodb_serve_cli.bad.json")
file(WRITE "${bad_trace}" "{\"op\": \"eval\"}")
execute_process(COMMAND ${IODB_REPLAY} "${bad_trace}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT "${err}" MATCHES "trace must be a JSON array")
  message(FATAL_ERROR "iodb_replay bad trace: exit ${rc}, want 2\n${err}")
endif()

# ... including a malformed number (the scanner accepts it; stod rejects).
set(bad_number "${WORK_DIR}/iodb_serve_cli.badnum.json")
file(WRITE "${bad_number}" "[{\"op\": \"eval\", \"db\": \"a\", \"n\": -}]")
execute_process(COMMAND ${IODB_REPLAY} "${bad_number}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT "${err}" MATCHES "malformed number")
  message(FATAL_ERROR "iodb_replay bad number: exit ${rc}, want 2\n${err}")
endif()

message(STATUS "iodb_serve/iodb_replay CLI test passed")
