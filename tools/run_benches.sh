#!/usr/bin/env bash
# Run the google-benchmark binaries and aggregate their JSON reports into a
# single BENCH_<timestamp>.json in the current directory.
#
# Usage:
#   tools/run_benches.sh [BUILD_DIR] [NAME_FILTER...]
#
#   BUILD_DIR    cmake build directory containing bench/ (default: build)
#   NAME_FILTER  optional shell globs; only bench binaries whose basename
#                matches at least one filter are run (e.g. 'bench_table*')
#
# Extra benchmark flags can be passed via BENCH_ARGS, e.g.
#   BENCH_ARGS='--benchmark_min_time=0.01' tools/run_benches.sh build
#
# The build must be configured with -DCMAKE_BUILD_TYPE=Release: numbers
# from unoptimized binaries are not baselines and silently poison the
# perf trajectory. A non-Release build is refused; set
# IODB_ALLOW_DEBUG_BENCH=1 to force a run anyway — the output is then
# loudly tagged BENCH_DEBUG_<timestamp>.json so it can never be mistaken
# for a baseline.
#
# The output file is a JSON object
#   {"cmake_build_type": "...", "runs": [<per-binary benchmark JSON>...]},
# i.e. each run element is the unmodified --benchmark_format=json report of
# one binary, so downstream tooling can diff context + benchmarks per run.
set -euo pipefail

build_dir="${1:-build}"
shift || true
filters=("$@")

bench_dir="${build_dir}/bench"
if [[ ! -d "${bench_dir}" ]]; then
  echo "run_benches.sh: no such directory '${bench_dir}'" \
       "(build first: cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j)" >&2
  exit 1
fi

# Refuse (or loudly tag) non-Release builds.
build_type=""
if [[ -f "${build_dir}/CMakeCache.txt" ]]; then
  build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${build_dir}/CMakeCache.txt" | head -n 1)"
fi
out_prefix="BENCH"
if [[ "${build_type}" != "Release" ]]; then
  if [[ "${IODB_ALLOW_DEBUG_BENCH:-0}" != "1" ]]; then
    echo "run_benches.sh: refusing to benchmark a '${build_type:-unknown}' build." >&2
    echo "  Configure with: cmake -B ${build_dir} -S . -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  (or set IODB_ALLOW_DEBUG_BENCH=1 to record a loudly-tagged debug run)" >&2
    exit 1
  fi
  out_prefix="BENCH_DEBUG"
  echo "run_benches.sh: WARNING: '${build_type:-unknown}' build —" \
       "output tagged ${out_prefix}_*, NOT a perf baseline" >&2
fi

matches_filter() {
  local name="$1"
  [[ ${#filters[@]} -eq 0 ]] && return 0
  local f
  for f in "${filters[@]}"; do
    # shellcheck disable=SC2053  # intentional glob match
    [[ "${name}" == ${f} ]] && return 0
  done
  return 1
}

binaries=()
for bin in "${bench_dir}"/bench_*; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  matches_filter "$(basename "${bin}")" && binaries+=("${bin}")
done

if [[ ${#binaries[@]} -eq 0 ]]; then
  echo "run_benches.sh: no bench binaries matched in ${bench_dir}" >&2
  exit 1
fi

out="${out_prefix}_$(date +%Y%m%d_%H%M%S).json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

# Assemble in the temp dir and move into place at the end, so a crashing
# bench binary never leaves a truncated ${out} behind as a baseline.
{
  printf '{"cmake_build_type": "%s",\n"runs": [\n' "${build_type}"
  first=1
  for bin in "${binaries[@]}"; do
    name="$(basename "${bin}")"
    echo "run_benches.sh: running ${name}" >&2
    report="${tmp_dir}/${name}.json"
    # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
    "${bin}" --benchmark_format=json ${BENCH_ARGS:-} > "${report}"
    [[ ${first} -eq 0 ]] && printf ',\n'
    first=0
    cat "${report}"
  done
  printf '\n]}\n'
} > "${tmp_dir}/aggregate.json"
mv "${tmp_dir}/aggregate.json" "${out}"

echo "run_benches.sh: wrote ${out} (${#binaries[@]} binaries)" >&2
