#!/usr/bin/env bash
# Run the google-benchmark binaries and aggregate their JSON reports into a
# single BENCH_<timestamp>.json in the current directory.
#
# Usage:
#   tools/run_benches.sh [BUILD_DIR] [NAME_FILTER...]
#
#   BUILD_DIR    cmake build directory containing bench/ (default: build)
#   NAME_FILTER  optional shell globs; only bench binaries whose basename
#                matches at least one filter are run (e.g. 'bench_table*')
#
# Extra benchmark flags can be passed via BENCH_ARGS, e.g.
#   BENCH_ARGS='--benchmark_min_time=0.01' tools/run_benches.sh build
#
# The output file is a JSON object {"runs": [<per-binary benchmark JSON>...]},
# i.e. each element is the unmodified --benchmark_format=json report of one
# binary, so downstream tooling can diff context + benchmarks per run.
set -euo pipefail

build_dir="${1:-build}"
shift || true
filters=("$@")

bench_dir="${build_dir}/bench"
if [[ ! -d "${bench_dir}" ]]; then
  echo "run_benches.sh: no such directory '${bench_dir}'" \
       "(build first: cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j)" >&2
  exit 1
fi

matches_filter() {
  local name="$1"
  [[ ${#filters[@]} -eq 0 ]] && return 0
  local f
  for f in "${filters[@]}"; do
    # shellcheck disable=SC2053  # intentional glob match
    [[ "${name}" == ${f} ]] && return 0
  done
  return 1
}

binaries=()
for bin in "${bench_dir}"/bench_*; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  matches_filter "$(basename "${bin}")" && binaries+=("${bin}")
done

if [[ ${#binaries[@]} -eq 0 ]]; then
  echo "run_benches.sh: no bench binaries matched in ${bench_dir}" >&2
  exit 1
fi

out="BENCH_$(date +%Y%m%d_%H%M%S).json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

# Assemble in the temp dir and move into place at the end, so a crashing
# bench binary never leaves a truncated ${out} behind as a baseline.
{
  printf '{"runs": [\n'
  first=1
  for bin in "${binaries[@]}"; do
    name="$(basename "${bin}")"
    echo "run_benches.sh: running ${name}" >&2
    report="${tmp_dir}/${name}.json"
    # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
    "${bin}" --benchmark_format=json ${BENCH_ARGS:-} > "${report}"
    [[ ${first} -eq 0 ]] && printf ',\n'
    first=0
    cat "${report}"
  done
  printf '\n]}\n'
} > "${tmp_dir}/aggregate.json"
mv "${tmp_dir}/aggregate.json" "${out}"

echo "run_benches.sh: wrote ${out} (${#binaries[@]} binaries)" >&2
